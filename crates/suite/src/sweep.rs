//! The `--sweep` batched orchestrator: run the full cross-product of
//! variants × block-size tunings of a selection in one invocation.
//!
//! The paper's methodology is *one run per (variant, tuning), composed later
//! in Thicket* (§II-D); a sweep automates the "many runs" half. Each cell of
//! the cross-product is an ordinary [`run_suite`] invocation with its own
//! correctly-named Caliper profile (`<variant>.block_<size>.cali.json` under
//! the sweep directory), so no two cells ever share an output file. A
//! `manifest.json` at the top of the sweep directory indexes every cell.
//!
//! Cells are cached: each run writes a `cells/<cell>.json` record whose
//! `key` captures exactly what was executed — (kernel, size, reps) for every
//! selected kernel, the variant, the block-size tuning, the fault spec
//! (a cell computed under injection must never satisfy a fault-free sweep),
//! and the build fingerprint ([`crate::code_version`]), so cells cached by
//! an older binary are re-run after a rebuild instead of silently reused.
//! Re-running a sweep after an interruption (or with an unchanged
//! configuration) reuses any cell whose key matches and whose profile file
//! still exists, and re-executes the rest.
//!
//! # Distributed campaigns (`--ranks N`)
//!
//! With `--ranks N > 1` the pending cells (after the cache scan) are
//! sharded across N simulated ranks — `simcomm` worker threads — with
//! cell-granularity work stealing (see [`ranks`]), mirroring the paper's
//! multi-rank MPI campaigns. Rank-local results travel back to rank 0 as
//! `simcomm` messages (a gather, not shared memory), and the manifest is
//! assembled in grid order from the gathered results, so it is
//! byte-identical to the `--ranks 1` run no matter which rank executed
//! which cell.
//!
//! With `--rank-isolation=process` the ranks are spawned child `rajaperf`
//! processes instead of threads: the same gather protocol travels as
//! line-delimited JSON over pipes ([`simcomm::transport`]), the parent
//! supervises (heartbeats, exit-status decoding, bounded restart,
//! casualty reporting — see [`process`]), and a hard fault in a rank is a
//! restarted rank, not a killed campaign. Manifest byte-identity versus
//! `--ranks 1` holds in both modes, across kills, restarts, and
//! isolation-mode changes on resume, because the cache key and manifest
//! never record rank count or isolation mode.
//!
//! # Crash safety
//!
//! The sweep is built to survive a `kill -9` at any instant and resume:
//!
//! * Every file the sweep writes — profiles (via [`run_suite`]'s Caliper
//!   outputs), cell cache records, and the manifest — goes through
//!   [`caliper::write_atomic`] (temp + fsync + rename), so a mid-write kill
//!   leaves either the old file or the new one, never a torn prefix.
//! * Cached cells are *integrity-checked* on load: a cache record or
//!   profile that exists but does not parse (e.g. written by a pre-atomic
//!   legacy writer, or hit by an injected `io.write` tear) is moved to
//!   `quarantine/` and the cell re-runs. Corruption is never trusted and
//!   never fatal.
//! * The manifest records only deterministic cell facts (no `cached` flags,
//!   no wall times, no executing-rank ids), so a killed-and-resumed sweep —
//!   at any rank count — produces a manifest byte-identical to an
//!   uninterrupted one.

use crate::params::RankIsolation;
use crate::{run_suite, RunParams};
use kernels::VariantId;
use serde_json::{json, Value};
use std::io;
use std::path::{Path, PathBuf};

pub(crate) mod process;
pub(crate) mod ranks;
pub(crate) mod worker;

pub use process::RankCasualty;

/// One (variant, tuning) cell of a sweep.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Variant this cell ran.
    pub variant: VariantId,
    /// GPU block-size tuning this cell ran.
    pub gpu_block_size: usize,
    /// The cell's Caliper profile file.
    pub profile: PathBuf,
    /// True when the cell was reused from a previous sweep run.
    pub cached: bool,
    /// The rank that executed this cell in a `--ranks N` campaign; `None`
    /// for cached cells and single-process sweeps. Diagnostic only — never
    /// part of the manifest.
    pub executed_by: Option<usize>,
    /// Kernels that executed and passed in this cell.
    pub kernels_run: usize,
    /// Kernels that failed or timed out in this cell (fault tolerance:
    /// failures are cell facts, not sweep aborts).
    pub kernels_failed: usize,
    /// Per-kernel `(name, outcome label)` of the failures, in run order.
    pub failed_kernels: Vec<(String, String)>,
    /// Summed kernel wall time of the cell, seconds.
    pub total_time_s: f64,
}

/// The result of [`run_sweep`].
#[derive(Debug, Clone)]
pub struct SweepSummary {
    /// Sweep output directory.
    pub dir: PathBuf,
    /// Path of the written manifest.
    pub manifest: PathBuf,
    /// Every cell of the cross-product, in (variant, block-size) order.
    pub cells: Vec<SweepCell>,
    /// Corrupt cache/profile files found while loading cached cells, after
    /// being moved into the sweep's `quarantine/` directory. Their cells
    /// were re-run.
    pub quarantined: Vec<PathBuf>,
    /// Per-rank communication counters of the campaign's gather traffic,
    /// indexed by rank; empty for single-process sweeps. In a
    /// process-isolated campaign these count the child's pipe frames
    /// (cumulative across restarts), from the child's perspective.
    pub rank_stats: Vec<simcomm::CommStats>,
    /// Times each child rank was respawned after dying, indexed by rank;
    /// empty unless `--rank-isolation=process`.
    pub rank_restarts: Vec<u32>,
    /// Ranks that exhausted their restart budget and were retired; their
    /// cells were redistributed to the surviving ranks. Empty unless a
    /// process-isolated campaign degraded.
    pub casualties: Vec<RankCasualty>,
    /// Child-rank stderr, each line prefixed `[rank N]`, in arrival order
    /// (bounded per rank). Process-isolated campaigns only.
    pub child_output: Vec<String>,
}

impl SweepSummary {
    /// Total kernel failures across all cells.
    pub fn kernels_failed(&self) -> usize {
        self.cells.iter().map(|c| c.kernels_failed).sum()
    }

    /// Render the per-cell summary table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Sweep: {} cells ({} cached{})\n{:<12} {:>10} {:>8} {:>8} {:>12}  profile\n",
            self.cells.len(),
            self.cells.iter().filter(|c| c.cached).count(),
            match self.quarantined.len() {
                0 => String::new(),
                n => format!(", {n} corrupt file(s) quarantined"),
            },
            "Variant",
            "BlockSize",
            "Kernels",
            "Failed",
            "Time (s)"
        );
        for c in &self.cells {
            out.push_str(&format!(
                "{:<12} {:>10} {:>8} {:>8} {:>12.3}  {}{}{}\n",
                c.variant.name(),
                c.gpu_block_size,
                c.kernels_run,
                c.kernels_failed,
                c.total_time_s,
                c.profile.display(),
                if c.cached { "  (cached)" } else { "" },
                match c.executed_by {
                    Some(r) => format!("  (rank {r})"),
                    None => String::new(),
                }
            ));
        }
        for c in &self.cells {
            for (kernel, label) in &c.failed_kernels {
                out.push_str(&format!(
                    "  {} block_{}: {kernel} {label}\n",
                    c.variant.name(),
                    c.gpu_block_size
                ));
            }
        }
        if !self.rank_stats.is_empty() {
            out.push_str(&format!("Ranks: {}\n", self.rank_stats.len()));
            for (rank, s) in self.rank_stats.iter().enumerate() {
                out.push_str(&format!(
                    "  rank {rank}: sent {} msg / {} B, received {} msg / {} B{}\n",
                    s.messages_sent,
                    s.bytes_sent,
                    s.messages_received,
                    s.bytes_received,
                    match self.rank_restarts.get(rank) {
                        Some(&r) if r > 0 => format!(", restarts {r}"),
                        _ => String::new(),
                    }
                ));
            }
        }
        if !self.casualties.is_empty() {
            out.push_str("Casualties (cells redistributed to surviving ranks):\n");
            for c in &self.casualties {
                out.push_str(&format!(
                    "  rank {}: retired after {} restart(s); last failure: {}\n",
                    c.rank, c.restarts, c.last_failure
                ));
            }
        }
        if !self.child_output.is_empty() {
            out.push_str("Rank output:\n");
            for line in &self.child_output {
                out.push_str(&format!("  {line}\n"));
            }
        }
        out
    }
}

/// The cache key of one cell: everything that determines its results.
fn cell_key(base: &RunParams, variant: VariantId, block_size: usize) -> Value {
    let mut p = base.clone();
    p.variant = variant;
    p.tuning.gpu_block_size = block_size;
    let kernel_keys: Vec<Value> = p
        .selected_kernels()
        .iter()
        .filter(|k| k.info().variants.contains(&variant))
        .map(|k| {
            let info = k.info();
            json!({
                "kernel": info.name,
                "size": p.problem_size(&info),
                "reps": p.reps(&info),
            })
        })
        .collect();
    json!({
        // A cell measured by an older build must never answer for a rebuilt
        // binary: kernels, the scheduler, or the timing path may all have
        // changed. Folding the build fingerprint into the key turns "stale
        // cache after rebuild" into an ordinary miss.
        "code_version": crate::code_version(),
        "variant": variant.name(),
        "gpu_block_size": block_size,
        "kernels": Value::Array(kernel_keys),
        // A cell computed under fault injection answers a different
        // question than a fault-free cell; never let one satisfy the other.
        // Note the *rank count* is deliberately absent: a cell's results do
        // not depend on which (or how many) ranks the campaign used, so a
        // --ranks 4 resume may reuse cells a --ranks 1 run computed.
        "faults": match &base.faults {
            Some(s) => Value::String(s.clone()),
            None => Value::Null,
        },
    })
}

/// Everything needed to execute (or reuse) one cell, precomputed in grid
/// order so any rank can execute any cell identically.
#[derive(Debug, Clone)]
pub(crate) struct CellSpec {
    /// Position in the (variant × block-size) grid; manifest order.
    pub(crate) index: usize,
    pub(crate) variant: VariantId,
    pub(crate) block_size: usize,
    /// The cell's Caliper profile path.
    pub(crate) profile: PathBuf,
    /// The cell's cache-record path.
    pub(crate) cache: PathBuf,
    /// The cell's cache key.
    pub(crate) key: Value,
}

/// The deterministic facts a cell execution produces (the manifest's cell
/// fields plus the wall time, which stays out of the manifest).
#[derive(Debug, Clone)]
pub(crate) struct CellOutcome {
    pub(crate) kernels_run: usize,
    pub(crate) kernels_failed: usize,
    pub(crate) failed_kernels: Vec<(String, String)>,
    pub(crate) total_time_s: f64,
}

impl CellOutcome {
    /// Serialize for the rank-0 gather (simcomm byte messages).
    pub(crate) fn to_json(&self) -> Value {
        json!({
            "kernels_run": self.kernels_run,
            "kernels_failed": self.kernels_failed,
            "failed_kernels": Value::Array(
                self.failed_kernels
                    .iter()
                    .map(|(k, s)| json!({"kernel": k, "status": s}))
                    .collect()
            ),
            "total_time_s": self.total_time_s,
        })
    }

    /// Parse a gathered outcome; `None` on schema mismatch.
    pub(crate) fn from_json(v: &Value) -> Option<CellOutcome> {
        Some(CellOutcome {
            kernels_run: usize::try_from(v.get("kernels_run")?.as_i64()?).ok()?,
            kernels_failed: usize::try_from(v.get("kernels_failed")?.as_i64()?).ok()?,
            failed_kernels: v
                .get("failed_kernels")?
                .as_array()?
                .iter()
                .map(|f| {
                    Some((
                        f.get("kernel")?.as_str()?.to_string(),
                        f.get("status")?.as_str()?.to_string(),
                    ))
                })
                .collect::<Option<Vec<_>>>()?,
            total_time_s: v.get("total_time_s")?.as_f64()?,
        })
    }
}

/// What loading a cell's cache produced.
pub(crate) enum CellLoad {
    /// The record matches and the profile is intact: reuse.
    Hit(CellOutcome),
    /// No usable cache (absent, or stale key): run the cell normally.
    Miss,
    /// Files exist but do not parse — torn by a kill or corrupted on disk.
    /// They must be quarantined and the cell re-run.
    Corrupt(Vec<PathBuf>),
}

/// Load a cell's cache record, integrity-checking both the record and the
/// profile it vouches for.
pub(crate) fn load_cached_cell(cache: &Path, key: &Value, profile: &Path) -> CellLoad {
    let text = match std::fs::read_to_string(cache) {
        Ok(t) => t,
        Err(_) => return CellLoad::Miss,
    };
    // An unparseable record is corruption, not staleness: a legacy
    // non-atomic writer (or an injected io.write tear) left a torn file.
    let v: Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(_) => return CellLoad::Corrupt(vec![cache.to_path_buf()]),
    };
    let parsed = (|| {
        let obj = v.as_object()?;
        if obj.get("key")? != key {
            return None;
        }
        CellOutcome::from_json(&v)
    })();
    let Some(outcome) = parsed else {
        return CellLoad::Miss;
    };
    // The record vouches for the profile; verify the profile is actually
    // there and intact before trusting either.
    match std::fs::read_to_string(profile) {
        Err(_) => CellLoad::Miss,
        Ok(text) => match serde_json::from_str::<Value>(&text) {
            Ok(_) => CellLoad::Hit(outcome),
            // Torn profile: quarantine it *and* the record that vouched for
            // it, so neither is ever consulted again.
            Err(_) => CellLoad::Corrupt(vec![profile.to_path_buf(), cache.to_path_buf()]),
        },
    }
}

/// Move a corrupt file into `dir/quarantine/`, uniquifying the name if a
/// previous quarantine already holds one. Returns the quarantined path.
fn quarantine(dir: &Path, file: &Path) -> io::Result<PathBuf> {
    let qdir = dir.join("quarantine");
    std::fs::create_dir_all(&qdir)?;
    let name = file
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "corrupt".to_string());
    let mut dest = qdir.join(&name);
    let mut i = 1;
    while dest.exists() {
        dest = qdir.join(format!("{name}.{i}"));
        i += 1;
    }
    std::fs::rename(file, &dest)?;
    Ok(dest)
}

fn json_io(e: serde_json::Error) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

/// Execute one cell: an ordinary [`run_suite`] with the cell's variant and
/// tuning, its profile as the Caliper output, and — in a ranked campaign —
/// the executing rank's identity as `rank_ctx` so the profile carries
/// `mpi.rank` metadata. Writes the cell's atomic cache record.
///
/// The cache record and its `key` are identical no matter which rank (or
/// how many ranks) executed the cell.
pub(crate) fn execute_cell(
    base: &RunParams,
    spec: &CellSpec,
    rank_ctx: Option<(usize, usize)>,
) -> io::Result<CellOutcome> {
    let mut p = base.clone();
    p.variant = spec.variant;
    p.tuning.gpu_block_size = spec.block_size;
    p.sweep = false;
    p.ranks = 1;
    p.rank_context = rank_ctx;
    p.caliper_spec = Some(format!("spot(output={})", spec.profile.display()));
    let report = run_suite(&p);
    let total_time_s: f64 = report
        .entries
        .iter()
        .map(|e| e.result.time.as_secs_f64())
        .sum();
    let failed_kernels: Vec<(String, String)> = report
        .outcomes
        .iter()
        .filter(|o| !o.outcome.is_pass())
        .map(|o| (o.kernel.clone(), o.outcome.label()))
        .collect();
    let entries: Vec<Value> = report
        .entries
        .iter()
        .map(|e| {
            json!({
                "kernel": e.kernel,
                "size": e.problem_size,
                "reps": e.reps,
                "time_per_rep_s": e.result.time_per_rep(),
                "checksum": e.result.checksum,
            })
        })
        .collect();
    let outcome = CellOutcome {
        kernels_run: report.entries.len(),
        kernels_failed: failed_kernels.len(),
        failed_kernels,
        total_time_s,
    };
    let record = json!({
        "key": spec.key.clone(),
        "profile": spec.profile.display().to_string(),
        "kernels_run": outcome.kernels_run,
        "kernels_failed": outcome.kernels_failed,
        "failed_kernels": Value::Array(
            outcome
                .failed_kernels
                .iter()
                .map(|(k, s)| json!({"kernel": k, "status": s}))
                .collect()
        ),
        "total_time_s": outcome.total_time_s,
        "entries": Value::Array(entries),
    });
    caliper::write_atomic(
        &spec.cache,
        serde_json::to_string_pretty(&record).map_err(json_io)?.as_bytes(),
    )?;
    Ok(outcome)
}

/// Run the full (variant × block-size) cross-product of `base`'s selection.
///
/// `base.sweep_block_sizes` supplies the tunings (falling back to the single
/// `base.tuning.gpu_block_size`); `base.sweep_dir` the output directory
/// (default `target/sweep`); `base.ranks` the campaign width (cells are
/// sharded across that many `simcomm` ranks when > 1). Every cell — even
/// one whose selection has no kernel supporting the variant — emits a
/// distinct profile, so downstream Thicket-style composition sees the
/// complete grid.
/// The planned grid of a sweep: output directory, tunings, and every
/// cell's spec in manifest order. Derived deterministically from the
/// parameters alone, so a child-rank worker process re-plans the identical
/// grid from the argv its supervisor hands it and the two sides can talk
/// about cells by grid index.
pub(crate) struct SweepPlan {
    pub(crate) dir: PathBuf,
    pub(crate) block_sizes: Vec<usize>,
    pub(crate) specs: Vec<CellSpec>,
}

/// Plan the (variant × block-size) grid and create the sweep's output
/// directories (idempotent).
pub(crate) fn plan_sweep(base: &RunParams) -> io::Result<SweepPlan> {
    let dir = base
        .sweep_dir
        .clone()
        .unwrap_or_else(|| PathBuf::from("target/sweep"));
    let profiles_dir = dir.join("profiles");
    let cells_dir = dir.join("cells");
    std::fs::create_dir_all(&profiles_dir)?;
    std::fs::create_dir_all(&cells_dir)?;
    let block_sizes: Vec<usize> = if base.sweep_block_sizes.is_empty() {
        vec![base.tuning.gpu_block_size]
    } else {
        base.sweep_block_sizes.clone()
    };
    let mut specs = Vec::new();
    for &variant in &VariantId::all() {
        for &bs in &block_sizes {
            let cell_name = format!("{}.block_{bs}", variant.name());
            specs.push(CellSpec {
                index: specs.len(),
                variant,
                block_size: bs,
                profile: profiles_dir.join(format!("{cell_name}.cali.json")),
                cache: cells_dir.join(format!("{cell_name}.json")),
                key: cell_key(base, variant, bs),
            });
        }
    }
    Ok(SweepPlan {
        dir,
        block_sizes,
        specs,
    })
}

/// Enter the rank-worker child loop (the hidden `--rank-worker R/N` mode a
/// process-isolated campaign's supervisor spawns); see [`worker`]. Returns
/// the process exit status for `main`.
pub fn run_rank_worker(base: &RunParams) -> crate::SuiteExit {
    worker::run(base)
}

pub fn run_sweep(base: &RunParams) -> io::Result<SweepSummary> {
    // Plan the grid in manifest order, then scan the cache: hits become
    // finished cells immediately, torn files are quarantined, and the rest
    // form the pending work-list any execution mode (serial, thread-ranked,
    // or process-ranked) consumes identically.
    let SweepPlan {
        dir,
        block_sizes,
        specs,
    } = plan_sweep(base)?;

    let mut quarantined = Vec::new();
    let mut finished: Vec<Option<SweepCell>> = vec![None; specs.len()];
    let mut pending: Vec<CellSpec> = Vec::new();
    for spec in &specs {
        match load_cached_cell(&spec.cache, &spec.key, &spec.profile) {
            CellLoad::Hit(outcome) => {
                finished[spec.index] = Some(cell_from(spec, &outcome, true, None));
            }
            CellLoad::Corrupt(files) => {
                for f in files {
                    quarantined.push(quarantine(&dir, &f)?);
                }
                pending.push(spec.clone());
            }
            CellLoad::Miss => pending.push(spec.clone()),
        }
    }

    let mut rank_stats = Vec::new();
    let mut rank_restarts = Vec::new();
    let mut casualties = Vec::new();
    let mut child_output = Vec::new();
    if base.rank_isolation == RankIsolation::Process && !pending.is_empty() {
        // Child-process ranks with a supervising restart loop: a crashed
        // rank is respawned (its in-flight cell re-enqueued), and no
        // FAULT_CELL_GATE — each child owns its own simfault state, so
        // fault-armed cells run rank-parallel.
        let campaign = process::execute_process_ranked(base, &pending)?;
        rank_stats = campaign.stats;
        rank_restarts = campaign.restarts;
        casualties = campaign.casualties;
        child_output = campaign.child_output;
        for (pending_idx, rank, outcome) in campaign.executed {
            let spec = &pending[pending_idx];
            finished[spec.index] = Some(cell_from(spec, &outcome, false, Some(rank)));
        }
    } else if base.ranks > 1 && !pending.is_empty() {
        let (executed, stats) = ranks::execute_ranked(base, &pending, base.ranks)?;
        rank_stats = stats;
        for (pending_idx, rank, outcome) in executed {
            let spec = &pending[pending_idx];
            finished[spec.index] = Some(cell_from(spec, &outcome, false, Some(rank)));
        }
    } else {
        for spec in &pending {
            let outcome = execute_cell(base, spec, None)?;
            finished[spec.index] = Some(cell_from(spec, &outcome, false, None));
        }
    }

    let cells: Vec<SweepCell> = finished
        .into_iter()
        .map(|c| c.expect("every grid cell resolved to cached or executed"))
        .collect();

    // The manifest indexes deterministic cell facts only — no cached flags,
    // no wall times, no executing ranks — so resuming an interrupted sweep
    // (at any rank count) reproduces the uninterrupted manifest byte for
    // byte.
    let manifest = dir.join("manifest.json");
    let manifest_value = json!({
        "suite": "RAJAPerf-rs",
        "block_sizes": block_sizes,
        "cells": Value::Array(
            cells
                .iter()
                .map(|c| {
                    json!({
                        "variant": c.variant.name(),
                        "gpu_block_size": c.gpu_block_size,
                        "profile": c.profile.display().to_string(),
                        "kernels_run": c.kernels_run,
                        "kernels_failed": c.kernels_failed,
                        "failed_kernels": Value::Array(
                            c.failed_kernels
                                .iter()
                                .map(|(k, s)| json!({"kernel": k, "status": s}))
                                .collect()
                        ),
                    })
                })
                .collect()
        ),
    });
    caliper::write_atomic(
        &manifest,
        serde_json::to_string_pretty(&manifest_value)
            .map_err(json_io)?
            .as_bytes(),
    )?;

    Ok(SweepSummary {
        dir,
        manifest,
        cells,
        quarantined,
        rank_stats,
        rank_restarts,
        casualties,
        child_output,
    })
}

fn cell_from(
    spec: &CellSpec,
    outcome: &CellOutcome,
    cached: bool,
    executed_by: Option<usize>,
) -> SweepCell {
    SweepCell {
        variant: spec.variant,
        gpu_block_size: spec.block_size,
        profile: spec.profile.clone(),
        cached,
        executed_by,
        kernels_run: outcome.kernels_run,
        kernels_failed: outcome.kernels_failed,
        failed_kernels: outcome.failed_kernels.clone(),
        total_time_s: outcome.total_time_s,
    }
}
