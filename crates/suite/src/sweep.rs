//! The `--sweep` batched orchestrator: run the full cross-product of
//! variants × block-size tunings of a selection in one invocation.
//!
//! The paper's methodology is *one run per (variant, tuning), composed later
//! in Thicket* (§II-D); a sweep automates the "many runs" half. Each cell of
//! the cross-product is an ordinary [`run_suite`] invocation with its own
//! correctly-named Caliper profile (`<variant>.block_<size>.cali.json` under
//! the sweep directory), so no two cells ever share an output file. A
//! `manifest.json` at the top of the sweep directory indexes every cell.
//!
//! Cells are cached: each run writes a `cells/<cell>.json` record whose
//! `key` captures exactly what was executed — (kernel, size, reps) for every
//! selected kernel, the variant, and the block-size tuning. Re-running a
//! sweep after an interruption (or with an unchanged configuration) reuses
//! any cell whose key matches and whose profile file still exists, and
//! re-executes the rest.

use crate::{run_suite, RunParams};
use kernels::VariantId;
use serde_json::{json, Value};
use std::io;
use std::path::{Path, PathBuf};

/// One (variant, tuning) cell of a sweep.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Variant this cell ran.
    pub variant: VariantId,
    /// GPU block-size tuning this cell ran.
    pub gpu_block_size: usize,
    /// The cell's Caliper profile file.
    pub profile: PathBuf,
    /// True when the cell was reused from a previous sweep run.
    pub cached: bool,
    /// Kernels that executed in this cell (selection ∩ variant support).
    pub kernels_run: usize,
    /// Summed kernel wall time of the cell, seconds.
    pub total_time_s: f64,
}

/// The result of [`run_sweep`].
#[derive(Debug, Clone)]
pub struct SweepSummary {
    /// Sweep output directory.
    pub dir: PathBuf,
    /// Path of the written manifest.
    pub manifest: PathBuf,
    /// Every cell of the cross-product, in (variant, block-size) order.
    pub cells: Vec<SweepCell>,
}

impl SweepSummary {
    /// Render the per-cell summary table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Sweep: {} cells ({} cached)\n{:<12} {:>10} {:>8} {:>12}  profile\n",
            self.cells.len(),
            self.cells.iter().filter(|c| c.cached).count(),
            "Variant",
            "BlockSize",
            "Kernels",
            "Time (s)"
        );
        for c in &self.cells {
            out.push_str(&format!(
                "{:<12} {:>10} {:>8} {:>12.3}  {}{}\n",
                c.variant.name(),
                c.gpu_block_size,
                c.kernels_run,
                c.total_time_s,
                c.profile.display(),
                if c.cached { "  (cached)" } else { "" }
            ));
        }
        out
    }
}

/// The cache key of one cell: everything that determines its results.
fn cell_key(base: &RunParams, variant: VariantId, block_size: usize) -> Value {
    let mut p = base.clone();
    p.variant = variant;
    p.tuning.gpu_block_size = block_size;
    let kernel_keys: Vec<Value> = p
        .selected_kernels()
        .iter()
        .filter(|k| k.info().variants.contains(&variant))
        .map(|k| {
            let info = k.info();
            json!({
                "kernel": info.name,
                "size": p.problem_size(&info),
                "reps": p.reps(&info),
            })
        })
        .collect();
    json!({
        "variant": variant.name(),
        "gpu_block_size": block_size,
        "kernels": Value::Array(kernel_keys),
    })
}

/// Reuse a finished cell when its cache record matches `key` and its
/// profile file is still on disk. Returns `(kernels_run, total_time_s)`.
fn load_cached_cell(cache: &Path, key: &Value, profile: &Path) -> Option<(usize, f64)> {
    if !profile.exists() {
        return None;
    }
    let v: Value = serde_json::from_str(&std::fs::read_to_string(cache).ok()?).ok()?;
    let obj = v.as_object()?;
    if obj.get("key")? != key {
        return None;
    }
    let kernels_run = usize::try_from(obj.get("kernels_run")?.as_i64()?).ok()?;
    let total_time_s = obj.get("total_time_s")?.as_f64()?;
    Some((kernels_run, total_time_s))
}

fn json_io(e: serde_json::Error) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

/// Run the full (variant × block-size) cross-product of `base`'s selection.
///
/// `base.sweep_block_sizes` supplies the tunings (falling back to the single
/// `base.tuning.gpu_block_size`); `base.sweep_dir` the output directory
/// (default `target/sweep`). Every cell — even one whose selection has no
/// kernel supporting the variant — emits a distinct profile, so downstream
/// Thicket-style composition sees the complete grid.
pub fn run_sweep(base: &RunParams) -> io::Result<SweepSummary> {
    let dir = base
        .sweep_dir
        .clone()
        .unwrap_or_else(|| PathBuf::from("target/sweep"));
    let profiles_dir = dir.join("profiles");
    let cells_dir = dir.join("cells");
    std::fs::create_dir_all(&profiles_dir)?;
    std::fs::create_dir_all(&cells_dir)?;
    let block_sizes: Vec<usize> = if base.sweep_block_sizes.is_empty() {
        vec![base.tuning.gpu_block_size]
    } else {
        base.sweep_block_sizes.clone()
    };

    let mut cells = Vec::new();
    for &variant in &VariantId::all() {
        for &bs in &block_sizes {
            let cell_name = format!("{}.block_{bs}", variant.name());
            let profile = profiles_dir.join(format!("{cell_name}.cali.json"));
            let cache = cells_dir.join(format!("{cell_name}.json"));
            let key = cell_key(base, variant, bs);

            if let Some((kernels_run, total_time_s)) = load_cached_cell(&cache, &key, &profile) {
                cells.push(SweepCell {
                    variant,
                    gpu_block_size: bs,
                    profile,
                    cached: true,
                    kernels_run,
                    total_time_s,
                });
                continue;
            }

            let mut p = base.clone();
            p.variant = variant;
            p.tuning.gpu_block_size = bs;
            p.sweep = false;
            p.caliper_spec = Some(format!("spot(output={})", profile.display()));
            let report = run_suite(&p);
            let total_time_s: f64 = report
                .entries
                .iter()
                .map(|e| e.result.time.as_secs_f64())
                .sum();
            let entries: Vec<Value> = report
                .entries
                .iter()
                .map(|e| {
                    json!({
                        "kernel": e.kernel,
                        "size": e.problem_size,
                        "reps": e.reps,
                        "time_per_rep_s": e.result.time_per_rep(),
                        "checksum": e.result.checksum,
                    })
                })
                .collect();
            let record = json!({
                "key": key,
                "profile": profile.display().to_string(),
                "kernels_run": report.entries.len(),
                "total_time_s": total_time_s,
                "entries": Value::Array(entries),
            });
            std::fs::write(&cache, serde_json::to_string_pretty(&record).map_err(json_io)?)?;
            cells.push(SweepCell {
                variant,
                gpu_block_size: bs,
                profile,
                cached: false,
                kernels_run: report.entries.len(),
                total_time_s,
            });
        }
    }

    let manifest = dir.join("manifest.json");
    let manifest_value = json!({
        "suite": "RAJAPerf-rs",
        "block_sizes": block_sizes,
        "cells": Value::Array(
            cells
                .iter()
                .map(|c| {
                    json!({
                        "variant": c.variant.name(),
                        "gpu_block_size": c.gpu_block_size,
                        "profile": c.profile.display().to_string(),
                        "cached": c.cached,
                        "kernels_run": c.kernels_run,
                        "total_time_s": c.total_time_s,
                    })
                })
                .collect()
        ),
    });
    std::fs::write(
        &manifest,
        serde_json::to_string_pretty(&manifest_value).map_err(json_io)?,
    )?;

    Ok(SweepSummary {
        dir,
        manifest,
        cells,
    })
}
