//! The RAJAPerf-rs driver: run parameters, the suite executor, reports,
//! and the Caliper/Adiak integration (paper §II-D).
//!
//! A single run executes a selection of kernels under one variant and one
//! tuning (as upstream: "a single RAJAPerf run generates a Caliper profile
//! containing one variant and one tuning"), annotates each kernel as a
//! Caliper region with its analytic metrics attached, registers the run
//! metadata through Adiak, and writes text/CSV reports plus the
//! `.cali`-style JSON profile that `thicket` consumes.
//!
//! The [`simulate`] module produces the *hardware-metric* profiles for the
//! four Table II machines — TMA tuples on the CPU systems, instruction
//! roofline points on the GPU systems, and predicted execution times — the
//! data behind Figs. 3–10.

use kernels::VariantId;
use std::collections::BTreeMap;
use std::path::PathBuf;

pub mod exec;
pub mod params;
pub mod report;
pub mod simulate;
pub mod sweep;

pub use exec::{FaultPolicy, KernelOutcome, OutcomeRecord, SuiteExit};
pub use params::{RunParams, Selection};
pub use sweep::{run_rank_worker, run_sweep, RankCasualty, SweepCell, SweepSummary};
pub use report::{CheckStatus, ChecksumReport, SanitizeSection, SuiteReport, TimingEntry};

/// Identity of the code that produced a measurement: the crate version plus
/// the build-script fingerprint (the git commit when the build had one).
/// Folded into every content-addressed cache key — sweep cells and daemon
/// store entries — so a profile measured by an older binary is never
/// silently served after a rebuild.
pub fn code_version() -> &'static str {
    concat!(
        env!("CARGO_PKG_VERSION"),
        "+",
        env!("RAJAPERF_BUILD_FINGERPRINT")
    )
}

/// One per-kernel progress notification from [`run_suite_observed`]:
/// emitted after each kernel-variant execution completes (passed, failed,
/// or timed out), with its position in the selection. The daemon streams
/// these to clients as `progress` events.
#[derive(Debug, Clone)]
pub struct KernelProgress {
    /// Full kernel name.
    pub kernel: String,
    /// 1-based position within the kernels this run executes.
    pub index: usize,
    /// Number of selected kernels that support the run's variant.
    pub total: usize,
    /// Outcome label (`PASSED`, `RETRIED(n)`, `FAILED`, `TIMEOUT`).
    pub outcome: String,
    /// Wall time of this kernel's execution attempt(s), seconds.
    pub time_s: f64,
}

/// Fault observer installed while `--faults` is armed: each fired fault
/// lands in the event trace as an instant marker (`simfault.<point>.<mode>`),
/// so a traced faulty run shows *where* in the timeline injections hit.
fn fault_trace_observer(point: &str, mode: &str) {
    if caliper::trace::enabled() {
        caliper::trace::instant_event(&format!("simfault.{point}.{mode}"));
    }
}

/// Execute the suite described by `params`, producing a report and (if
/// configured) Caliper output files.
pub fn run_suite(params: &RunParams) -> SuiteReport {
    run_suite_observed(params, None)
}

/// [`run_suite`] with an optional per-kernel progress observer, called after
/// each kernel-variant execution with its [`KernelProgress`]. The daemon
/// uses this to stream progress events to clients while a request runs.
pub fn run_suite_observed(
    params: &RunParams,
    progress: Option<&dyn Fn(&KernelProgress)>,
) -> SuiteReport {
    let session = caliper::Session::new();
    adiak::init();
    adiak::value("variant", params.variant.name());
    adiak::value("tuning", format!("block_{}", params.tuning.gpu_block_size));
    adiak::value("size_factor", params.size_factor);
    adiak::value_categorized("suite", "RAJAPerf-rs", adiak::Category::General);
    // Adiak is process-global; under the daemon several runs annotate
    // concurrently and would read each other's metadata at flush time. The
    // same values set directly on the (private) session override the Adiak
    // snapshot in the profile, so each run's profile stays self-consistent.
    session.set_global("variant", params.variant.name());
    session.set_global("tuning", format!("block_{}", params.tuning.gpu_block_size));
    session.set_global("size_factor", params.size_factor);
    session.set_global("suite", "RAJAPerf-rs");
    // Rank identity inside a `--ranks N` campaign, using real Caliper's MPI
    // attribute names so Thicket-side tooling can group profiles by rank.
    if let Some((rank, nranks)) = params.rank_context {
        session.set_rank(rank, nranks);
    }

    // Event trace: switch collection on before the first region so the
    // timeline covers the whole run — whether requested via `--trace` or a
    // `trace(...)` service in the Caliper spec (the service can only export
    // events that were recorded). `clear()` drops any events left over from
    // an earlier run in this process.
    let spec_cm = params.caliper_spec.as_ref().map(|spec| {
        let mut cm = caliper::ConfigManager::new();
        cm.add(spec);
        cm
    });
    let tracing = params.trace.is_some()
        || spec_cm.as_ref().is_some_and(|cm| cm.requests_event_trace());
    if tracing {
        caliper::trace::clear();
        session.enable_event_trace();
    }

    // Lock-order diagnostics: wire simsched's attribution hooks to Caliper
    // (region context on every recorded edge, `simsched.*` instants on the
    // event-trace timeline) and start recording before the first kernel so
    // the graph covers the pool's warm-up acquisitions too.
    if params.lock_order {
        simsched::set_context_provider(Some(caliper::current_region_path));
        simsched::set_instant_sink(Some(caliper::trace::instant_event));
        simsched::lockorder::reset();
        simsched::lockorder::enable();
    }

    // Fault injection: (re)install the spec at the start of every run so
    // draw counters reset — each run_suite call (each sweep cell included)
    // replays the identical deterministic fault sequence, interrupted or
    // not. Stays armed through the output flush so `io.write` injections
    // can tear profile writes; disarmed before returning.
    let faults_armed = match &params.faults {
        Some(spec) => {
            simfault::install_spec(spec)
                .unwrap_or_else(|e| panic!("invalid fault spec (validate params first): {e}"));
            simfault::set_observer(Some(fault_trace_observer));
            true
        }
        None => false,
    };
    let policy = exec::FaultPolicy {
        timeout: params.timeout,
        max_retries: params.max_retries,
        retry_backoff: params.retry_backoff,
    };

    let mut entries = Vec::new();
    let mut outcomes = Vec::new();
    let executable: Vec<&'static dyn kernels::KernelBase> = params
        .selected_kernels()
        .into_iter()
        .filter(|k| k.info().variants.contains(&params.variant))
        .collect();
    let total = executable.len();
    let suite_comm_before = simcomm::thread_stats();
    let _suite_region = session.region("RAJAPerf");
    for (idx, kernel) in executable.into_iter().enumerate() {
        let info = kernel.info();
        let n = params.problem_size(&info);
        let reps = params.reps(&info);
        let _group = session.region(info.group.name());
        let region = session.region(info.name);
        // Scope label for `point@kernel` fault filters. Process-global (not
        // thread-local) so a watchdog-spawned attempt still sees it.
        let scope = faults_armed.then(|| simfault::scoped(info.name));
        let comm_before = simcomm::thread_stats();
        let (outcome, result) =
            exec::execute_guarded(kernel, params.variant, n, reps, &params.tuning, &policy);
        drop(scope);
        // Communication attributable to this kernel (the HALO family): the
        // watchdog relays a spawned attempt's counters back to this thread,
        // so the delta covers both execution paths. Attempts abandoned by a
        // timeout report nothing — their counters are lost with the thread.
        let comm_delta = simcomm::thread_stats().since(comm_before);
        if !comm_delta.is_zero() {
            session.set_metric("comm.messages_sent", comm_delta.messages_sent as f64);
            session.set_metric("comm.bytes_sent", comm_delta.bytes_sent as f64);
            session.set_metric(
                "comm.messages_received",
                comm_delta.messages_received as f64,
            );
            session.set_metric("comm.bytes_received", comm_delta.bytes_received as f64);
        }
        if let Some(observer) = progress {
            observer(&KernelProgress {
                kernel: info.name.to_string(),
                index: idx + 1,
                total,
                outcome: outcome.label(),
                time_s: result
                    .as_ref()
                    .map(|r| r.time.as_secs_f64())
                    .unwrap_or(0.0),
            });
        }
        session.set_metric("ProblemSize", n as f64);
        session.set_metric("Reps", reps as f64);
        if let exec::KernelOutcome::Passed { retries: r @ 1.. } = outcome {
            session.set_metric("fault.retries", r as f64);
        }
        match result {
            Some(result) => {
                session.set_metric(
                    "Bytes/Rep",
                    result.metrics.bytes_read + result.metrics.bytes_written,
                );
                session.set_metric("BytesRead/Rep", result.metrics.bytes_read);
                session.set_metric("BytesWritten/Rep", result.metrics.bytes_written);
                session.set_metric("Flops/Rep", result.metrics.flops);
                session.set_metric("Checksum", result.checksum);
                session.set_metric("Time/Rep", result.time_per_rep());
                entries.push(TimingEntry {
                    kernel: info.name.to_string(),
                    group: info.group.name().to_string(),
                    variant: params.variant,
                    problem_size: n,
                    reps,
                    result,
                });
            }
            None => {
                // The failure is data too: the profile records that the
                // kernel ran and failed, so thicket-side analysis can
                // distinguish "failed" from "not selected".
                session.set_metric("fault.failed", 1.0);
                eprintln!(
                    "warning: {} {}: {} — continuing with the rest of the selection",
                    info.name,
                    outcome.label(),
                    outcome.detail()
                );
            }
        }
        region.end();
        outcomes.push(exec::OutcomeRecord {
            kernel: info.name.to_string(),
            variant: params.variant,
            outcome,
        });
    }
    drop(_suite_region);

    // Adiak-style fault metadata, recorded only when there is something to
    // say (a fault config, a failure, or a retry) so ordinary clean runs
    // keep their exact historical profile shape.
    let failed = outcomes.iter().filter(|o| !o.outcome.is_pass()).count();
    let retries_total: u32 = outcomes
        .iter()
        .map(|o| match o.outcome {
            exec::KernelOutcome::Passed { retries }
            | exec::KernelOutcome::Failed { retries, .. } => retries,
            _ => 0,
        })
        .sum();
    if faults_armed || failed > 0 || retries_total > 0 {
        if let Some(spec) = &params.faults {
            session.set_global("fault.spec", spec.as_str());
        }
        session.set_global("fault.kernels_failed", failed as i64);
        session.set_global("fault.retries_total", retries_total as i64);
        session.set_global("fault.injected_total", simfault::fired_total() as i64);
    }

    // Suite-level communication totals (zero and absent for runs that never
    // touched simcomm, preserving the historical profile shape).
    let suite_comm = simcomm::thread_stats().since(suite_comm_before);
    if !suite_comm.is_zero() {
        session.set_global("comm.messages_sent", suite_comm.messages_sent as i64);
        session.set_global("comm.bytes_sent", suite_comm.bytes_sent as i64);
        session.set_global("comm.messages_received", suite_comm.messages_received as i64);
        session.set_global("comm.bytes_received", suite_comm.bytes_received as i64);
    }

    // Stop collecting before the sanitizer pass and the exports: the trace
    // is the timing run's timeline, nothing else's.
    if tracing {
        session.disable_event_trace();
        caliper::trace::disable();
    }

    // Optional sanitizer pass over the same selection. It runs after the
    // timing loop (never interleaved with it) so the measured kernel times
    // above are untouched, and its cost lands in the profile as metadata
    // through `annotate_overhead` rather than in any kernel region.
    let sanitize = params.sanitize.then(|| {
        let section = run_sanitize(params);
        session.set_global("sanitizer", "simsan");
        session.set_global(
            "sanitizer_findings",
            section.total_occurrences() as i64,
        );
        session.annotate_overhead("sanitizer", section.total_baseline(), section.total_time());
        section
    });

    // Lock-order findings: stop recording, render the cycle report, and put
    // the cycle count in the profile globals (before the flush below, so
    // written profiles carry it and Thicket-side analysis can filter runs
    // with findings). Hooks are unhooked so a later non-diagnostic run in
    // this process pays nothing.
    let lock_order = params.lock_order.then(|| {
        simsched::lockorder::disable();
        let cycles = simsched::lockorder::cycle_count();
        session.set_global("lockorder.cycles", cycles as i64);
        let text = simsched::lockorder::report().unwrap_or_else(|| {
            "simsched lock-order analysis: no potential deadlock cycles detected\n".to_string()
        });
        simsched::set_context_provider(None);
        simsched::set_instant_sink(None);
        text
    });

    let mut outputs = Vec::new();
    if let Some(cm) = &spec_cm {
        if let Some(err) = cm.error() {
            eprintln!("warning: {err}");
        }
        match cm.flush(&session) {
            Ok(paths) => outputs.extend(paths),
            Err(e) => eprintln!("warning: caliper flush failed: {e}"),
        }
    }
    if let Some(path) = &params.trace {
        // The --trace flag is sugar for the ConfigManager `trace` service.
        let mut spec = format!("trace(output={}", path.display());
        if let Some(folded) = &params.trace_folded {
            spec.push_str(&format!(",folded={}", folded.display()));
        }
        spec.push(')');
        let mut cm = caliper::ConfigManager::new();
        cm.add(&spec);
        match cm.flush(&session) {
            Ok(paths) => outputs.extend(paths),
            Err(e) => eprintln!("warning: trace export failed: {e}"),
        }
    }
    if tracing {
        // All trace exports are done; leave no events behind for the next
        // run in this process.
        caliper::trace::clear();
    }
    if faults_armed {
        simfault::set_observer(None);
        simfault::disarm();
    }

    SuiteReport {
        variant: params.variant,
        entries,
        profile: session.profile(),
        outputs,
        sanitize,
        lock_order,
        outcomes,
    }
}

/// Run the simulated-device sanitizer (`simsan`) over the kernels selected
/// by `params`, covering every simulated-device variant each kernel
/// implements. The sweep uses `--size` when given and otherwise
/// [`kernels::sanitize::DEFAULT_SANITIZE_SIZE`] — shadow tracking costs a
/// map operation per access, and the hazard classes it detects are
/// intra-block, so a reduced size loses no coverage.
pub fn run_sanitize(params: &RunParams) -> SanitizeSection {
    let n = params.explicit_size;
    let mut section = SanitizeSection::default();
    for kernel in params.selected_kernels() {
        for &v in kernels::sanitize::SANITIZED_VARIANTS {
            if let Some(outcome) = kernels::sanitize::sanitize_kernel(
                kernel,
                v,
                n.unwrap_or(kernels::sanitize::DEFAULT_SANITIZE_SIZE),
                &params.tuning,
            ) {
                section.outcomes.push(outcome);
            }
        }
    }
    section
}

/// Rewrite every `output=PATH` value in a Caliper ConfigManager spec so the
/// file name carries `tag` before its extension chain — whatever the
/// extension is. `spot(output=run.json)` with tag `Base_Seq` becomes
/// `spot(output=run.Base_Seq.json)`, `out.cali.json` becomes
/// `out.Base_Seq.cali.json`, and an extensionless `run` becomes
/// `run.Base_Seq`. The `stdout`/`stderr` pseudo-paths and specs without an
/// `output=` key are left untouched.
pub fn spec_with_tag(spec: &str, tag: &str) -> String {
    let mut out = String::with_capacity(spec.len() + tag.len() + 1);
    let mut rest = spec;
    while let Some(pos) = rest.find("output=") {
        let vstart = pos + "output=".len();
        out.push_str(&rest[..vstart]);
        let value_len = rest[vstart..]
            .find([',', ')'])
            .unwrap_or(rest.len() - vstart);
        let value = &rest[vstart..vstart + value_len];
        out.push_str(&tag_path(value, tag));
        rest = &rest[vstart + value_len..];
    }
    out.push_str(rest);
    out
}

/// Insert `tag` before the extension chain of `path`'s final component.
fn tag_path(path: &str, tag: &str) -> String {
    if path.is_empty() || path == "stdout" || path == "stderr" {
        return path.to_string();
    }
    let file_start = path.rfind('/').map_or(0, |i| i + 1);
    let file = &path[file_start..];
    // Split at the *first* dot of the file name so multi-part extensions
    // (`.cali.json`) survive intact; a leading dot (hidden file) is a name
    // character, not an extension separator.
    let split = match file.char_indices().skip(1).find(|&(_, c)| c == '.') {
        Some((i, _)) => file_start + i,
        None => path.len(),
    };
    format!("{}.{}{}", &path[..split], tag, &path[split..])
}

/// Run several variants (for cross-variant checksum validation and
/// RAJA-overhead comparison), one profile per variant as upstream: the
/// variant name is inserted into every `output=` file name of the Caliper
/// spec so variants never clobber each other's profiles.
pub fn run_variants(base: &RunParams, variants: &[VariantId]) -> Vec<SuiteReport> {
    variants
        .iter()
        .map(|&v| {
            let mut p = base.clone();
            p.variant = v;
            if let Some(spec) = &mut p.caliper_spec {
                *spec = spec_with_tag(spec, v.name());
            }
            run_suite(&p)
        })
        .collect()
}

/// Compare checksums across the reports of [`run_variants`]. Each kernel's
/// reference is the first report (in run order) that actually ran it; a
/// kernel absent from the primary reference variant is anchored to the
/// first variant that supports it (rendered `n/a (reference)`), not marked
/// as a failure.
pub fn checksum_report(reports: &[SuiteReport]) -> ChecksumReport {
    let mut rows = BTreeMap::new();
    // kernel → (index of the report providing its reference, checksum).
    let mut reference: BTreeMap<&str, (usize, f64)> = BTreeMap::new();
    for (ri, rep) in reports.iter().enumerate() {
        for e in &rep.entries {
            reference
                .entry(e.kernel.as_str())
                .or_insert((ri, e.result.checksum));
        }
    }
    for (ri, rep) in reports.iter().enumerate() {
        for e in &rep.entries {
            let (ref_idx, rf) = reference[e.kernel.as_str()];
            let status = if ri == ref_idx && ref_idx != 0 {
                report::CheckStatus::Reference
            } else if kernels::common::close(e.result.checksum, rf, 1e-8) {
                report::CheckStatus::Pass
            } else {
                report::CheckStatus::Fail
            };
            let row: &mut Vec<(VariantId, f64, report::CheckStatus)> =
                rows.entry(e.kernel.clone()).or_default();
            row.push((e.variant, e.result.checksum, status));
        }
    }
    ChecksumReport { rows }
}

/// Run one kernel across a sweep of GPU block-size tunings under a device
/// variant (the paper's §II-C "find optimal configurations ... by tuning
/// various execution parameters, such as GPU thread-block sizes").
/// Returns `(block_size, seconds-per-rep)` pairs in sweep order, or an
/// error naming the unknown kernel — a user-supplied name must surface as
/// a usage error, not a panic.
pub fn run_tuning_sweep(
    kernel_name: &str,
    variant: VariantId,
    n: usize,
    reps: usize,
    block_sizes: &[usize],
) -> Result<Vec<(usize, f64)>, String> {
    let kernel =
        kernels::find(kernel_name).ok_or_else(|| format!("unknown kernel '{kernel_name}'"))?;
    Ok(block_sizes
        .iter()
        .map(|&bs| {
            let tuning = kernels::Tuning {
                gpu_block_size: bs,
            };
            let r = kernel.execute(variant, n, reps, &tuning);
            (bs, r.time_per_rep())
        })
        .collect())
}

impl SuiteReport {
    /// Render the run as a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = format!(
            "### RAJAPerf-rs run — variant `{}`\n\n\
             | Kernel | Group | Size | Reps | Time/rep (s) | GB/s | GFLOP/s |\n\
             |---|---|--:|--:|--:|--:|--:|\n",
            self.variant.name()
        );
        for e in &self.entries {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {:.3e} | {:.2} | {:.2} |
",
                e.kernel,
                e.group,
                e.problem_size,
                e.reps,
                e.result.time_per_rep(),
                e.bandwidth() / 1e9,
                e.flop_rate() / 1e9,
            ));
        }
        out
    }
}

/// Where experiment binaries write their outputs.
pub fn experiment_dir() -> PathBuf {
    let dir = std::env::var("RAJAPERF_EXPERIMENT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/experiments"));
    let _ = std::fs::create_dir_all(&dir);
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> RunParams {
        RunParams {
            selection: Selection::Kernels(vec![
                "Stream_TRIAD".into(),
                "Basic_DAXPY".into(),
                "Algorithm_SCAN".into(),
            ]),
            explicit_size: Some(2000),
            explicit_reps: Some(2),
            ..RunParams::default()
        }
    }

    #[test]
    fn run_suite_produces_entries_and_profile() {
        let report = run_suite(&small_params());
        assert_eq!(report.entries.len(), 3);
        // Profile has one record per kernel region (plus group/suite nodes).
        let triad = report
            .profile
            .find("Stream_TRIAD")
            .expect("TRIAD region recorded");
        assert!(triad.metric("Flops/Rep").unwrap() > 0.0);
        assert_eq!(triad.metric("Reps"), Some(2.0));
        assert_eq!(report.profile.global_str("variant"), Some("Base_Seq"));
    }

    #[test]
    fn variants_share_checksums() {
        let p = small_params();
        let reports = run_variants(
            &p,
            &[VariantId::BaseSeq, VariantId::RajaSeq, VariantId::RajaPar],
        );
        let cr = checksum_report(&reports);
        assert_eq!(cr.rows.len(), 3);
        assert!(cr.all_pass(), "{}", cr.render());
    }

    #[test]
    fn timing_report_renders() {
        let report = run_suite(&small_params());
        let text = report.render_timing();
        assert!(text.contains("Stream_TRIAD"));
        assert!(text.contains("Base_Seq"));
        let csv = report.to_csv();
        assert!(csv.lines().count() >= 4, "header + 3 kernels");
    }

    #[test]
    fn tuning_sweep_covers_all_block_sizes() {
        let sweep = run_tuning_sweep(
            "Stream_TRIAD",
            VariantId::RajaSimGpu,
            4096,
            1,
            &[64, 256, 1024],
        )
        .unwrap();
        assert_eq!(sweep.len(), 3);
        assert_eq!(sweep[0].0, 64);
        assert!(sweep.iter().all(|&(_, t)| t > 0.0));
    }

    #[test]
    fn tuning_sweep_reports_unknown_kernel_instead_of_panicking() {
        // Regression: an unknown (user-supplied) kernel name used to panic.
        let err =
            run_tuning_sweep("Stream_TRIADD", VariantId::RajaSimGpu, 64, 1, &[64]).unwrap_err();
        assert!(err.contains("Stream_TRIADD"), "{err}");
    }

    #[test]
    fn code_version_carries_version_and_fingerprint() {
        let v = code_version();
        assert!(v.starts_with(env!("CARGO_PKG_VERSION")), "{v}");
        assert!(v.contains('+'), "version+fingerprint format: {v}");
        assert!(!v.ends_with('+'), "fingerprint must be non-empty: {v}");
    }

    #[test]
    // Plain std Mutex is fine here: test-local accumulation, not a checked
    // concurrency protocol.
    #[allow(clippy::disallowed_types)]
    fn progress_observer_sees_every_executed_kernel() {
        use std::sync::Mutex as StdMutex;
        static SEEN: StdMutex<Vec<(String, usize, usize, String)>> = StdMutex::new(Vec::new());
        SEEN.lock().unwrap().clear();
        let observer = |p: &KernelProgress| {
            SEEN.lock()
                .unwrap()
                .push((p.kernel.clone(), p.index, p.total, p.outcome.clone()));
        };
        let report = run_suite_observed(&small_params(), Some(&observer));
        let seen = SEEN.lock().unwrap();
        assert_eq!(seen.len(), 3);
        assert_eq!(report.entries.len(), 3);
        assert!(seen.iter().all(|(_, _, total, _)| *total == 3));
        assert_eq!(
            seen.iter().map(|(_, i, _, _)| *i).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert!(seen.iter().all(|(_, _, _, o)| o == "PASSED"));
    }

    #[test]
    fn markdown_report_renders_table() {
        let report = run_suite(&small_params());
        let md = report.to_markdown();
        assert!(md.contains("| Kernel |"));
        assert!(md.contains("| Stream_TRIAD |"));
        // Header row + one data row per kernel.
        assert_eq!(md.lines().filter(|l| l.starts_with("| ")).count(), 1 + 3);
    }

    #[test]
    fn sanitize_pass_reports_clean_and_annotates_profile() {
        let p = RunParams {
            sanitize: true,
            ..small_params()
        };
        let report = run_suite(&p);
        let section = report.sanitize.as_ref().expect("sanitize section present");
        // All three kernels support both simulated-device variants.
        assert_eq!(section.outcomes.len(), 6);
        assert!(section.all_clean(), "{}", section.render());
        assert_eq!(report.profile.global_str("sanitizer"), Some("simsan"));
        assert!(
            report.profile.globals.contains_key("sanitizer_overhead_pct"),
            "overhead metadata recorded"
        );
        let rendered = section.render();
        assert!(rendered.contains("Stream_TRIAD"));
        assert!(rendered.contains("CLEAN"));
    }

    #[test]
    fn sanitize_off_by_default() {
        let report = run_suite(&small_params());
        assert!(report.sanitize.is_none());
    }

    #[test]
    fn spec_with_tag_inserts_variant_before_any_extension() {
        // Regression: the old `.cali.json`-only string replace silently
        // no-opped for every other spec, so all variants clobbered one file.
        assert_eq!(
            spec_with_tag("spot(output=run.json)", "Base_Seq"),
            "spot(output=run.Base_Seq.json)"
        );
        assert_eq!(
            spec_with_tag("spot(output=run.cali.json)", "RAJA_Par"),
            "spot(output=run.RAJA_Par.cali.json)"
        );
        assert_eq!(
            spec_with_tag("runtime-report,output=a.txt,profile", "V"),
            "runtime-report,output=a.V.txt,profile"
        );
        assert_eq!(spec_with_tag("spot(output=dir.d/run)", "V"), "spot(output=dir.d/run.V)");
        assert_eq!(
            spec_with_tag("runtime-report,output=stdout", "V"),
            "runtime-report,output=stdout"
        );
        assert_eq!(spec_with_tag("runtime-report", "V"), "runtime-report");
    }

    #[test]
    fn run_variants_writes_one_profile_per_variant() {
        let dir = std::env::temp_dir().join(format!("rajaperf_profiles_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = RunParams {
            selection: Selection::Kernels(vec!["Stream_MUL".into()]),
            explicit_size: Some(1000),
            explicit_reps: Some(1),
            // The clobbering reproducer: a spec whose output is *not*
            // `.cali.json`-suffixed.
            caliper_spec: Some(format!("spot(output={}/run.json)", dir.display())),
            ..RunParams::default()
        };
        let reports = run_variants(&p, &VariantId::all());
        let mut files: Vec<_> = reports.iter().flat_map(|r| r.outputs.clone()).collect();
        assert_eq!(files.len(), 6, "one output per variant");
        files.sort();
        files.dedup();
        assert_eq!(files.len(), 6, "variant profiles must not collide");
        assert!(files.iter().all(|f| f.exists()));
        assert!(files
            .iter()
            .any(|f| f.file_name().is_some_and(|n| n == "run.Base_Seq.json")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checksum_report_falls_back_when_reference_lacks_kernel() {
        // Regression: a kernel absent from the first report used to be a
        // hard FAIL; it must instead anchor to the first variant that ran
        // it and render as n/a.
        let a = run_suite(&RunParams {
            selection: Selection::Kernels(vec!["Stream_TRIAD".into()]),
            explicit_size: Some(1000),
            explicit_reps: Some(1),
            ..RunParams::default()
        });
        let b = run_suite(&RunParams {
            selection: Selection::Kernels(vec!["Stream_TRIAD".into(), "Stream_ADD".into()]),
            variant: VariantId::RajaSeq,
            explicit_size: Some(1000),
            explicit_reps: Some(1),
            ..RunParams::default()
        });
        let cr = checksum_report(&[a, b]);
        assert!(cr.all_pass(), "{}", cr.render());
        let add_row = &cr.rows["Stream_ADD"];
        assert_eq!(add_row.len(), 1);
        assert_eq!(add_row[0].2, CheckStatus::Reference);
        assert!(cr.render().contains("n/a"));
        // The kernel both reports ran still compares normally.
        assert!(cr.rows["Stream_TRIAD"]
            .iter()
            .all(|(_, _, st)| *st == CheckStatus::Pass));
    }

    #[test]
    fn sweep_emits_one_profile_per_cell_and_caches() {
        let dir = std::env::temp_dir().join(format!("rajaperf_sweep_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let p = RunParams {
            selection: Selection::Kernels(vec!["Stream_TRIAD".into()]),
            explicit_size: Some(1000),
            explicit_reps: Some(1),
            sweep: true,
            sweep_block_sizes: vec![128, 256],
            sweep_dir: Some(dir.clone()),
            ..RunParams::default()
        };
        let s1 = run_sweep(&p).unwrap();
        assert_eq!(s1.cells.len(), 12, "6 variants x 2 block sizes");
        let mut profiles: Vec<_> = s1.cells.iter().map(|c| c.profile.clone()).collect();
        profiles.sort();
        profiles.dedup();
        assert_eq!(profiles.len(), 12, "one distinct profile per cell");
        assert!(s1.cells.iter().all(|c| !c.cached && c.profile.exists()));
        assert!(s1.manifest.exists());
        assert!(s1.render().contains("block_128") || s1.render().contains("128"));

        // An unchanged re-run reuses every finished cell.
        let s2 = run_sweep(&p).unwrap();
        assert!(s2.cells.iter().all(|c| c.cached), "{}", s2.render());

        // Changing anything in the cell key re-executes.
        let p3 = RunParams {
            explicit_size: Some(2000),
            ..p.clone()
        };
        let s3 = run_sweep(&p3).unwrap();
        assert!(s3.cells.iter().all(|c| !c.cached));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_cells_from_another_build_are_not_reused() {
        // Regression: the cell key omitted the code version, so cells cached
        // by an older binary were silently reused after a rebuild. Simulate
        // the older binary by doctoring the recorded key's code_version —
        // exactly what a fingerprint change looks like on disk.
        let dir = std::env::temp_dir().join(format!("rajaperf_sweep_fp_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let p = RunParams {
            selection: Selection::Kernels(vec!["Stream_TRIAD".into()]),
            explicit_size: Some(1000),
            explicit_reps: Some(1),
            sweep: true,
            sweep_dir: Some(dir.clone()),
            ..RunParams::default()
        };
        let s1 = run_sweep(&p).unwrap();
        assert!(s1.cells.iter().all(|c| !c.cached));

        let cells_dir = dir.join("cells");
        for entry in std::fs::read_dir(&cells_dir).unwrap() {
            let path = entry.unwrap().path();
            let mut v: serde_json::Value =
                serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
            let serde_json::Value::Object(obj) = &mut v else {
                panic!("cell record is an object");
            };
            let Some(serde_json::Value::Object(key)) = obj.get_mut("key") else {
                panic!("cell record has an object key");
            };
            let recorded = key.get("code_version").unwrap().as_str().unwrap();
            assert_eq!(recorded, code_version(), "cells record the live build");
            key.insert(
                "code_version".to_string(),
                serde_json::Value::String("0.0.0+older-build".into()),
            );
            std::fs::write(&path, serde_json::to_string_pretty(&v).unwrap()).unwrap();
        }

        // Every cell now claims another build produced it: all must re-run.
        let s2 = run_sweep(&p).unwrap();
        assert!(
            s2.cells.iter().all(|c| !c.cached),
            "stale-build cells must miss, not hit: {}",
            s2.render()
        );
        // And once re-recorded by this build, they hit again.
        let s3 = run_sweep(&p).unwrap();
        assert!(s3.cells.iter().all(|c| c.cached), "{}", s3.render());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_selection_runs_whole_group() {
        let p = RunParams {
            selection: Selection::Groups(vec!["Stream".into()]),
            explicit_size: Some(1000),
            explicit_reps: Some(1),
            ..RunParams::default()
        };
        let report = run_suite(&p);
        assert_eq!(report.entries.len(), 5, "five Stream kernels");
    }
}
