//! Process-isolated rank campaigns: the supervising parent side of
//! `--rank-isolation=process`.
//!
//! Each rank of the campaign is a spawned child `rajaperf` process in
//! rank-worker mode (see [`super::worker`]); this module is the parent
//! that supervises them. The division of labor with thread mode is
//! deliberate: the *scheduler* ([`CellScheduler`]) and the *wire shape*
//! (the gather protocol's JSON, framed by [`simcomm::transport`]) are
//! shared, while the carrier changes from in-memory `simcomm` messages to
//! OS pipes — and the crash model changes from "a panicked rank poisons
//! the campaign" to "a dead rank is a restartable event".
//!
//! # Supervisor state machine (per rank slot)
//!
//! ```text
//!            spawn            ready frame
//!   Spawned ───────▶ Booting ────────────▶ Ready ◀─────────┐
//!                       │                    │ assign       │ result
//!                       │ death              ▼              │
//!                       │                  Busy ────────────┘
//!                       │                    │ death (EOF / torn frame /
//!                       ▼                    ▼  missed heartbeat → kill)
//!                     Dead ◀─────────────────┘
//!                       │ restarts < budget: requeue cell, backoff,
//!                       │ respawn (generation += 1)
//!                       ├──────────────────────────────▶ Booting
//!                       │ restarts == budget
//!                       ▼
//!                    Retired (casualty; queue drained by the survivors)
//! ```
//!
//! Death is detected two ways: the rank's stdout reader sees EOF or a torn
//! frame (the `kill -9` signature), or the liveness scan notices no frame
//! for [`HEARTBEAT_DEADLINE`] and kills the wedged child so the reader
//! *will* see EOF. Every event is tagged with the slot's generation, so a
//! restarted rank never has its state corrupted by a previous
//! incarnation's late events.
//!
//! # Exit-status taxonomy
//!
//! A dead child's wait status is decoded ([`decode_child_exit`]) before
//! the supervisor reacts: a signal death, panic (exit 101), or internal
//! error is a restartable event charged against the rank's budget; a
//! *usage* exit (2) means supervisor and worker disagree about the command
//! line — no restart can fix that, so it aborts the campaign as
//! [`io::ErrorKind::InvalidInput`], which the binary maps to exit 2.
//!
//! # Deviations from real MPI/srun
//!
//! Real launchers (srun, mpiexec) treat a lost rank as fatal to the whole
//! job step; restart-on-failure lives a level up (scheduler requeue of the
//! entire job). This supervisor restarts *within* the campaign instead,
//! which only works because cells are idempotent facts: the cell cache
//! (atomic records, keyed by content, indifferent to rank count and
//! isolation mode) makes re-execution safe and re-reporting cheap, so the
//! manifest stays byte-identical to an undisturbed `--ranks 1` run no
//! matter how many children died on the way.

use super::ranks::{CellScheduler, GatheredCell};
use super::{CellOutcome, CellSpec};
use crate::RunParams;
use serde_json::{json, Value};
use simcomm::transport::{read_frame, write_frame};
use simcomm::CommStats;
use simsched::time::Instant;
use std::collections::HashMap;
use std::io::{self, BufReader};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, ExitStatus, Stdio};
use std::sync::mpsc;
use std::time::Duration;

/// No frame (heartbeats included) for this long means the child is wedged
/// and gets killed. The worker heartbeats every 500ms from a dedicated
/// thread even while a cell runs, so 20× that cadence cannot false-positive
/// on a merely busy rank.
const HEARTBEAT_DEADLINE: Duration = Duration::from_secs(10);

/// Base of the linear restart backoff: respawn `k` waits `k *` this.
const RESTART_BACKOFF: Duration = Duration::from_millis(100);

/// Event-loop poll granularity (drives the liveness scan cadence).
const POLL: Duration = Duration::from_millis(50);

/// How long a child that closed stdout gets to actually exit before the
/// supervisor stops waiting politely and SIGKILLs it.
const REAP_GRACE: Duration = Duration::from_secs(2);

/// How long clean shutdown waits for all children before force-killing.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(5);

/// Captured stderr cap per rank: enough for real diagnostics, bounded
/// against a child that floods.
const MAX_OUTPUT_LINES: usize = 200;

/// Test/daemon override for the worker binary; falls back to resolving a
/// `rajaperf` next to the current executable.
pub(crate) const WORKER_BIN_ENV: &str = "RAJAPERF_WORKER_BIN";

/// A rank that exhausted its restart budget and was retired from the
/// campaign; its unfinished cells were redistributed to surviving ranks.
#[derive(Debug, Clone)]
pub struct RankCasualty {
    /// The retired rank.
    pub rank: usize,
    /// Restarts consumed before retirement (the full budget).
    pub restarts: u32,
    /// Decoded description of the death that exhausted the budget.
    pub last_failure: String,
}

/// What a completed (possibly degraded) process campaign produced.
pub(crate) struct ProcessCampaign {
    /// `(pending index, executing rank, outcome)` per executed cell.
    pub(crate) executed: Vec<GatheredCell>,
    /// Per-rank pipe traffic, from the child's perspective, cumulative
    /// across that rank's restarts.
    pub(crate) stats: Vec<CommStats>,
    /// Respawns performed per rank.
    pub(crate) restarts: Vec<u32>,
    /// Ranks retired after exhausting the restart budget.
    pub(crate) casualties: Vec<RankCasualty>,
    /// Child stderr lines, prefixed `[rank N]`, plus supervisor
    /// annotations, in arrival order.
    pub(crate) child_output: Vec<String>,
}

/// A dead child's wait status, decoded into what the supervisor (and the
/// suite's exit taxonomy) cares about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ChildExit {
    /// Exit 0.
    Clean,
    /// Exit 2: the worker rejected its command line.
    Usage,
    /// Exit 101: the Rust runtime's panic exit.
    Panic,
    /// Any other exit code.
    Internal(i32),
    /// Terminated by a signal (`kill -9`, SIGABRT, SIGSEGV, ...).
    Signal(i32),
}

/// Decode a child's `ExitStatus` (unix: exit code vs terminating signal).
pub(crate) fn decode_child_exit(status: ExitStatus) -> ChildExit {
    use std::os::unix::process::ExitStatusExt;
    match status.code() {
        Some(0) => ChildExit::Clean,
        Some(2) => ChildExit::Usage,
        Some(101) => ChildExit::Panic,
        Some(c) => ChildExit::Internal(c),
        None => ChildExit::Signal(status.signal().unwrap_or(-1)),
    }
}

impl ChildExit {
    /// Human description for casualty reports and respawn annotations.
    pub(crate) fn describe(&self) -> String {
        match self {
            ChildExit::Clean => "exited cleanly mid-campaign".to_string(),
            ChildExit::Usage => "usage error (exit 2)".to_string(),
            ChildExit::Panic => "panicked (exit 101)".to_string(),
            ChildExit::Internal(c) => format!("exited with internal error (exit {c})"),
            ChildExit::Signal(s) => {
                let name = match *s {
                    6 => " (SIGABRT)",
                    9 => " (SIGKILL)",
                    11 => " (SIGSEGV)",
                    15 => " (SIGTERM)",
                    _ => "",
                };
                format!("killed by signal {s}{name}")
            }
        }
    }
}

/// Resolve the `rajaperf` binary to spawn workers from: the env override,
/// the current executable itself (when the supervisor *is* `rajaperf`), or
/// a `rajaperf` sibling of it (the daemon's layout, and — one level up —
/// cargo's `target/debug/deps/<test-bin>` layout).
fn worker_binary() -> io::Result<PathBuf> {
    if let Ok(p) = std::env::var(WORKER_BIN_ENV) {
        if !p.is_empty() {
            return Ok(PathBuf::from(p));
        }
    }
    let exe = std::env::current_exe()?;
    if exe.file_name().and_then(|n| n.to_str()) == Some("rajaperf") {
        return Ok(exe);
    }
    let mut candidates = Vec::new();
    if let Some(dir) = exe.parent() {
        candidates.push(dir.join("rajaperf"));
        if let Some(up) = dir.parent() {
            candidates.push(up.join("rajaperf"));
        }
    }
    candidates
        .into_iter()
        .find(|c| c.is_file())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!(
                    "cannot locate the rajaperf worker binary next to {} \
                     (set {WORKER_BIN_ENV} to override)",
                    exe.display()
                ),
            )
        })
}

/// What a rank's reader threads report to the event loop.
enum Event {
    /// A protocol frame from the child's stdout, plus its wire bytes.
    Frame(Value, u64),
    /// The child's stdout closed (clean EOF or torn frame — both mean the
    /// child is gone or going).
    Eof,
    /// One line of the child's stderr.
    Stderr(String),
}

/// Supervisor-side state of one rank.
struct RankSlot {
    child: Option<Child>,
    stdin: Option<ChildStdin>,
    /// Incarnation counter: events tagged with an older generation are
    /// late arrivals from a previous (dead) child and are discarded.
    gen: u64,
    /// The current incarnation sent its `ready` frame.
    ready: bool,
    /// Pending-index of the cell assigned and not yet reported.
    current: Option<usize>,
    restarts: u32,
    retired: bool,
    /// Pipe traffic from the child's perspective (sent = child → parent),
    /// cumulative across restarts, mirroring thread mode's per-rank view.
    stats: CommStats,
    last_seen: Instant,
    /// Set when the liveness scan killed this child, to annotate the
    /// decoded (SIGKILL) status with *why*.
    kill_note: Option<String>,
    output_lines: usize,
}

struct Supervisor<'a> {
    pending: &'a [CellSpec],
    nranks: usize,
    budget: u32,
    bin: PathBuf,
    argv: Vec<String>,
    sched: CellScheduler,
    slots: Vec<RankSlot>,
    tx: mpsc::Sender<(usize, u64, Event)>,
    rx: mpsc::Receiver<(usize, u64, Event)>,
    /// Grid index (what the wire speaks) → pending index (what the
    /// scheduler and result vectors speak).
    grid_to_pending: HashMap<usize, usize>,
    executed: Vec<GatheredCell>,
    done: Vec<bool>,
    completed: usize,
    casualties: Vec<RankCasualty>,
    child_output: Vec<String>,
}

/// RAII backstop: however the supervisor leaves scope — clean return,
/// campaign-aborting error, panic — no child outlives it unreaped.
impl Drop for Supervisor<'_> {
    fn drop(&mut self) {
        for slot in &mut self.slots {
            drop(slot.stdin.take());
            if let Some(mut child) = slot.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

/// Execute `pending` cells across `base.ranks` child processes with a
/// restart budget of `base.rank_restarts` per rank. See the module docs
/// for the full contract.
pub(crate) fn execute_process_ranked(
    base: &RunParams,
    pending: &[CellSpec],
) -> io::Result<ProcessCampaign> {
    let nranks = base.ranks.max(1);
    let (tx, rx) = mpsc::channel();
    let mut sup = Supervisor {
        pending,
        nranks,
        budget: base.rank_restarts,
        bin: worker_binary()?,
        argv: base.to_argv(),
        sched: CellScheduler::new(pending.len(), nranks),
        slots: (0..nranks)
            .map(|_| RankSlot {
                child: None,
                stdin: None,
                gen: 0,
                ready: false,
                current: None,
                restarts: 0,
                retired: false,
                stats: CommStats::new(),
                last_seen: Instant::now(),
                kill_note: None,
                output_lines: 0,
            })
            .collect(),
        tx,
        rx,
        grid_to_pending: pending
            .iter()
            .enumerate()
            .map(|(pi, spec)| (spec.index, pi))
            .collect(),
        executed: Vec::new(),
        done: vec![false; pending.len()],
        completed: 0,
        casualties: Vec::new(),
        child_output: Vec::new(),
    };
    sup.run()
}

impl Supervisor<'_> {
    fn run(&mut self) -> io::Result<ProcessCampaign> {
        for rank in 0..self.nranks {
            self.spawn_rank(rank)?;
        }
        while self.completed < self.pending.len() {
            if self.slots.iter().all(|s| s.retired) {
                let roster = self
                    .casualties
                    .iter()
                    .map(|c| format!("rank {}: {}", c.rank, c.last_failure))
                    .collect::<Vec<_>>()
                    .join("; ");
                return Err(io::Error::other(format!(
                    "all {} ranks retired before campaign completion ({}/{} cells done): {roster}",
                    self.nranks,
                    self.completed,
                    self.pending.len(),
                )));
            }
            match self.rx.recv_timeout(POLL) {
                Ok((rank, gen, ev)) => self.handle(rank, gen, ev)?,
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                // Unreachable while `self.tx` is alive, but harmless.
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
            self.liveness_scan();
        }
        self.shutdown();
        Ok(ProcessCampaign {
            executed: std::mem::take(&mut self.executed),
            stats: self.slots.iter().map(|s| s.stats).collect(),
            restarts: self.slots.iter().map(|s| s.restarts).collect(),
            casualties: std::mem::take(&mut self.casualties),
            child_output: std::mem::take(&mut self.child_output),
        })
    }

    /// Spawn (or respawn) `rank`'s child at the slot's current generation
    /// and wire its stdout/stderr into the event channel.
    fn spawn_rank(&mut self, rank: usize) -> io::Result<()> {
        let gen = self.slots[rank].gen;
        let mut child = Command::new(&self.bin)
            .args(&self.argv)
            .arg("--rank-worker")
            .arg(format!("{rank}/{}", self.nranks))
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .map_err(|e| {
                io::Error::new(
                    e.kind(),
                    format!("cannot spawn rank {rank} worker {}: {e}", self.bin.display()),
                )
            })?;
        let stdout = child.stdout.take().expect("stdout piped");
        let stderr = child.stderr.take().expect("stderr piped");
        let stdin = child.stdin.take().expect("stdin piped");

        // Register the child before spawning its readers: if a thread
        // fails to spawn, the error propagates and the Drop guard still
        // reaps the child.
        {
            let slot = &mut self.slots[rank];
            slot.child = Some(child);
            slot.stdin = Some(stdin);
            slot.ready = false;
            slot.last_seen = Instant::now();
        }

        let tx = self.tx.clone();
        std::thread::Builder::new()
            .name(format!("rank-{rank}-stdout"))
            .spawn(move || {
                let mut r = BufReader::new(stdout);
                loop {
                    match read_frame(&mut r) {
                        Ok(Some((v, n))) => {
                            if tx.send((rank, gen, Event::Frame(v, n))).is_err() {
                                return;
                            }
                        }
                        // Clean EOF and a torn frame both mean the child is
                        // gone; the distinction is recovered from the wait
                        // status, not the pipe.
                        Ok(None) | Err(_) => {
                            let _ = tx.send((rank, gen, Event::Eof));
                            return;
                        }
                    }
                }
            })?;
        let tx = self.tx.clone();
        std::thread::Builder::new()
            .name(format!("rank-{rank}-stderr"))
            .spawn(move || {
                use std::io::BufRead;
                for line in BufReader::new(stderr).lines() {
                    let Ok(line) = line else { return };
                    if tx.send((rank, gen, Event::Stderr(line))).is_err() {
                        return;
                    }
                }
            })?;
        Ok(())
    }

    fn handle(&mut self, rank: usize, gen: u64, ev: Event) -> io::Result<()> {
        match ev {
            // Stderr is captured regardless of generation: a dead
            // incarnation's last words are diagnostics, not state.
            Event::Stderr(line) => {
                self.capture_output(rank, &line);
                Ok(())
            }
            Event::Frame(v, bytes) => {
                if gen != self.slots[rank].gen {
                    return Ok(());
                }
                let slot = &mut self.slots[rank];
                slot.last_seen = Instant::now();
                slot.stats.messages_sent += 1;
                slot.stats.bytes_sent += bytes;
                if v.get("ready").is_some() {
                    slot.ready = true;
                    self.assign(rank);
                    return Ok(());
                }
                if v.get("heartbeat").is_some() {
                    return Ok(());
                }
                if let Some(result) = v.get("result") {
                    return self.on_result(rank, result);
                }
                if let Some(failed) = v.get("failed") {
                    // Mirrors thread mode: a cell that *reports* failure
                    // (as opposed to a rank that dies) aborts the campaign;
                    // finished cells are on disk for the resume.
                    let detail = failed
                        .get("error")
                        .and_then(Value::as_str)
                        .unwrap_or("unspecified failure");
                    return Err(io::Error::other(format!(
                        "sweep rank {rank} failed: {detail}"
                    )));
                }
                // Unknown frame kinds are ignored (forward compatibility).
                Ok(())
            }
            Event::Eof => {
                if gen != self.slots[rank].gen {
                    return Ok(());
                }
                self.on_child_exit(rank)
            }
        }
    }

    fn on_result(&mut self, rank: usize, result: &Value) -> io::Result<()> {
        let parsed = (|| {
            let grid = usize::try_from(result.get("cell")?.as_i64()?).ok()?;
            let outcome = CellOutcome::from_json(result.get("outcome")?)?;
            Some((grid, outcome))
        })();
        let Some((grid, outcome)) = parsed else {
            return Err(io::Error::other(format!(
                "sweep rank {rank} sent a malformed cell result"
            )));
        };
        let Some(&pi) = self.grid_to_pending.get(&grid) else {
            return Err(io::Error::other(format!(
                "sweep rank {rank} reported cell {grid}, which is not pending"
            )));
        };
        // `done` guards the one legitimate double-report: a child finished
        // a cell, died before we read the result frame, and the requeued
        // cell was answered again (from cache) by another rank.
        if !self.done[pi] {
            self.done[pi] = true;
            self.completed += 1;
            self.executed.push((pi, rank, outcome));
        }
        self.slots[rank].current = None;
        self.assign(rank);
        Ok(())
    }

    /// Reap a dead child, decode why it died, requeue its in-flight cell,
    /// and either respawn it (budget permitting) or retire it.
    fn on_child_exit(&mut self, rank: usize) -> io::Result<()> {
        let slot = &mut self.slots[rank];
        drop(slot.stdin.take());
        let Some(mut child) = slot.child.take() else {
            return Ok(());
        };
        let status = reap(&mut child)?;
        slot.ready = false;
        let exit = decode_child_exit(status);
        if exit == ChildExit::Usage {
            // The worker rejected the command line the supervisor built;
            // restarting cannot fix a parameter disagreement. InvalidInput
            // maps to the suite's usage exit (2) in the binary.
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "rank {rank} worker rejected its command line (exit 2); \
                     supervisor and worker disagree on parameters"
                ),
            ));
        }
        let mut reason = exit.describe();
        if let Some(note) = slot.kill_note.take() {
            reason = format!("{reason} ({note})");
        }
        if let Some(i) = slot.current.take() {
            if !self.done[i] {
                self.sched.requeue(rank, i);
            }
        }
        if self.slots[rank].restarts < self.budget {
            let slot = &mut self.slots[rank];
            slot.restarts += 1;
            slot.gen += 1;
            let attempt = slot.restarts;
            let backoff = RESTART_BACKOFF * attempt;
            self.child_output.push(format!(
                "[rank {rank}] -- supervisor: {reason}; respawn {attempt}/{} after {}ms",
                self.budget,
                backoff.as_millis()
            ));
            // A blocking backoff is deliberate: it is bounded (≤ budget ×
            // base per rank over the whole campaign) and keeps the event
            // loop single-threaded; surviving ranks keep executing their
            // already-assigned cells meanwhile.
            std::thread::sleep(backoff);
            self.spawn_rank(rank)?;
        } else {
            let slot = &mut self.slots[rank];
            slot.retired = true;
            self.child_output.push(format!(
                "[rank {rank}] -- supervisor: {reason}; restart budget ({}) exhausted, retiring rank",
                self.budget
            ));
            self.casualties.push(RankCasualty {
                rank,
                restarts: self.slots[rank].restarts,
                last_failure: reason,
            });
            // The casualty's queued cells are stealable; nudge every idle
            // survivor so redistribution does not wait for their next
            // natural result.
            self.assign_idle();
        }
        Ok(())
    }

    /// Kill any child that has not produced a frame within the heartbeat
    /// deadline; the kill surfaces as EOF → `on_child_exit` with the note.
    fn liveness_scan(&mut self) {
        for rank in 0..self.nranks {
            let slot = &mut self.slots[rank];
            if slot.retired || slot.child.is_none() {
                continue;
            }
            let silent = slot.last_seen.elapsed();
            if silent > HEARTBEAT_DEADLINE {
                slot.kill_note = Some(format!(
                    "supervisor: no frame for {:.1}s, presumed wedged",
                    silent.as_secs_f64()
                ));
                if let Some(child) = slot.child.as_mut() {
                    let _ = child.kill();
                }
                // Reset so the kill is issued once; EOF follows shortly.
                slot.last_seen = Instant::now();
            }
        }
    }

    /// Hand `rank` its next cell if it is ready and idle. Send failures are
    /// ignored here: a dying child's EOF event will requeue the cell.
    fn assign(&mut self, rank: usize) {
        let slot = &self.slots[rank];
        if slot.retired || !slot.ready || slot.current.is_some() {
            return;
        }
        let Some(i) = self.sched.next(rank) else {
            return;
        };
        self.slots[rank].current = Some(i);
        let grid = self.pending[i].index;
        self.send_to(rank, &json!({"cell": grid}));
    }

    fn assign_idle(&mut self) {
        for rank in 0..self.nranks {
            self.assign(rank);
        }
    }

    /// Write one frame to `rank`'s stdin, counting it (as the child's
    /// "received") on success. Errors are swallowed — a broken pipe means
    /// the child is dead and its EOF event carries the consequences.
    fn send_to(&mut self, rank: usize, frame: &Value) {
        let slot = &mut self.slots[rank];
        let Some(stdin) = slot.stdin.as_mut() else {
            return;
        };
        if let Ok(bytes) = write_frame(stdin, frame) {
            slot.stats.messages_received += 1;
            slot.stats.bytes_received += bytes;
        }
    }

    fn capture_output(&mut self, rank: usize, line: &str) {
        let slot = &mut self.slots[rank];
        if slot.output_lines > MAX_OUTPUT_LINES {
            return;
        }
        slot.output_lines += 1;
        if slot.output_lines > MAX_OUTPUT_LINES {
            self.child_output
                .push(format!("[rank {rank}] -- supervisor: output truncated"));
        } else {
            self.child_output.push(format!("[rank {rank}] {line}"));
        }
    }

    /// Campaign complete: ask every surviving child to exit, give them
    /// [`SHUTDOWN_GRACE`], then force-kill stragglers. Also drains any
    /// stderr still in flight so the report keeps the children's last
    /// words.
    fn shutdown(&mut self) {
        for rank in 0..self.nranks {
            self.send_to(rank, &json!({"shutdown": true}));
            // Closing stdin is the EOF backstop for a worker that missed
            // the frame (and the orphan contract's trigger).
            drop(self.slots[rank].stdin.take());
        }
        let grace = Instant::now();
        loop {
            let mut alive = false;
            for slot in &mut self.slots {
                if let Some(child) = slot.child.as_mut() {
                    match child.try_wait() {
                        Ok(Some(_)) => slot.child = None,
                        Ok(None) => alive = true,
                        Err(_) => slot.child = None,
                    }
                }
            }
            if !alive {
                break;
            }
            if grace.elapsed() > SHUTDOWN_GRACE {
                for slot in &mut self.slots {
                    if let Some(mut child) = slot.child.take() {
                        let _ = child.kill();
                        let _ = child.wait();
                    }
                }
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        while let Ok((rank, _gen, ev)) = self.rx.try_recv() {
            if let Event::Stderr(line) = ev {
                self.capture_output(rank, &line);
            }
        }
    }
}

/// Wait for a child whose stdout already closed: poll politely for
/// [`REAP_GRACE`] (a cleanly-exiting child is milliseconds away), then
/// SIGKILL — a child that closed stdout but will not exit is wedged, and
/// blocking the supervisor forever on `wait()` is not an option.
fn reap(child: &mut Child) -> io::Result<ExitStatus> {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait()? {
            return Ok(status);
        }
        if start.elapsed() > REAP_GRACE {
            let _ = child.kill();
            return child.wait();
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::unix::process::ExitStatusExt;

    /// Build an `ExitStatus` from a raw wait status: `code << 8` for an
    /// exit, the bare signal number for a signal death.
    fn raw(status: i32) -> ExitStatus {
        ExitStatus::from_raw(status)
    }

    #[test]
    fn exit_status_decodes_to_the_taxonomy() {
        assert_eq!(decode_child_exit(raw(0)), ChildExit::Clean);
        assert_eq!(decode_child_exit(raw(2 << 8)), ChildExit::Usage);
        assert_eq!(decode_child_exit(raw(101 << 8)), ChildExit::Panic);
        assert_eq!(decode_child_exit(raw(3 << 8)), ChildExit::Internal(3));
        assert_eq!(decode_child_exit(raw(9)), ChildExit::Signal(9));
        assert_eq!(decode_child_exit(raw(6)), ChildExit::Signal(6));
    }

    #[test]
    fn signal_descriptions_name_the_common_signals() {
        assert_eq!(
            ChildExit::Signal(9).describe(),
            "killed by signal 9 (SIGKILL)"
        );
        assert_eq!(
            ChildExit::Signal(6).describe(),
            "killed by signal 6 (SIGABRT)"
        );
        assert_eq!(ChildExit::Signal(42).describe(), "killed by signal 42");
        assert_eq!(ChildExit::Panic.describe(), "panicked (exit 101)");
        assert_eq!(
            ChildExit::Internal(7).describe(),
            "exited with internal error (exit 7)"
        );
    }
}
