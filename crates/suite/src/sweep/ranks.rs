//! Rank-sharded campaign execution: shard a sweep's pending cells across
//! N simulated `simcomm` ranks with cell-granularity work stealing.
//!
//! The paper runs its campaigns as multi-rank MPI jobs (112 ranks on the
//! CPU systems — Table III); this module is that shape over threads. Each
//! rank is one `simcomm` worker thread executing whole cells (a cell is an
//! ordinary [`execute_cell`] with PR 5's per-kernel `catch_unwind` +
//! watchdog intact), and idle ranks steal cells from busy peers.
//!
//! # Stealing discipline
//!
//! [`CellScheduler`] reuses the shared pool's deterministic-chunk
//! discipline (`vendor/rayon/src/pool.rs`) at cell granularity: one deque
//! of contiguous `[lo, hi)` segments per rank, owner pops at the *back*
//! (LIFO, locality), thieves pop at the *front* (FIFO — largest segments
//! first, since splits push progressively smaller halves), scanning peers
//! round-robin from `me + 1`. Taking a segment repeatedly gives away its
//! back half (`mid = lo + (hi-lo)/2 + (hi-lo)%2`) until one cell remains,
//! which the taker executes. Which rank runs which cell is scheduling-
//! dependent; *what the cell computes* is not, so the gathered results are
//! order-independent facts.
//!
//! # Gather protocol
//!
//! Results cross rank boundaries as `simcomm` *messages*, not shared
//! memory: each rank > 0 serializes its `(cell index, outcome)` list as
//! JSON bytes and sends it to rank 0 on [`GATHER_TAG`]; rank 0 receives
//! one report per peer (any arrival order — tag matching sorts it out) and
//! returns the merged list. The caller reassembles cells in grid order, so
//! the manifest is byte-identical to a `--ranks 1` run.
//!
//! # Crash model
//!
//! A rank that panics mid-cell poisons the run: `simcomm`'s hardened
//! runtime wakes every peer and [`execute_ranked`] surfaces the first
//! failure as a rank-attributed error. Completed cells are already on disk
//! (atomic cache records), so a resumed sweep reuses them and re-runs only
//! the casualties — the same contract as a `kill -9`.
//!
//! # Fault-injection serialization
//!
//! `simfault` state is process-global and each cell re-installs the spec
//! (resetting draw counters) at `run_suite` start. Two faulty cells running
//! concurrently would corrupt each other's deterministic sequences, so
//! when `base.faults` (or `--sanitize`, whose hazard ledger is also
//! global) is set, cell execution is serialized under [`FAULT_CELL_GATE`] —
//! ranks still shard and steal, but only one cell is inside `run_suite` at
//! a time. Fault replay is then identical per cell regardless of executing
//! rank, which is what makes seeded `--faults` manifests rank-count
//! independent.
//!
//! The gate is a *thread-mode* cost: under `--rank-isolation=process`
//! (see [`super::process`]) every rank is its own OS process with its own
//! process-global fault state, so process-mode campaigns skip the gate
//! entirely and fault-armed cells run rank-parallel with the same seeded
//! replay guarantee.

use super::{execute_cell, CellOutcome, CellSpec};
use crate::RunParams;
use serde_json::{json, Value};
use simsched::sync::Mutex;
use std::collections::VecDeque;
use std::io;
use std::sync::PoisonError;

/// User-space tag carrying each rank's gathered results to rank 0.
const GATHER_TAG: i32 = 0;

/// Serializes cell execution when process-global state (fault injection,
/// the sanitizer ledger) is armed; see the module docs.
static FAULT_CELL_GATE: Mutex<()> = Mutex::labeled((), "sweep.fault_cell_gate");

/// A contiguous range of pending-cell indices `lo..hi`.
#[derive(Debug, Clone, Copy)]
struct Segment {
    lo: usize,
    hi: usize,
}

/// Cell-granularity work-stealing scheduler over `ncells` pending cells,
/// mirroring the pool's segment discipline (see module docs).
pub(crate) struct CellScheduler {
    queues: Vec<Mutex<VecDeque<Segment>>>,
}

impl CellScheduler {
    /// Pre-shard `ncells` into one contiguous segment per rank (the same
    /// block decomposition an MPI campaign would use), empty for ranks
    /// beyond the cell count.
    pub(crate) fn new(ncells: usize, nranks: usize) -> CellScheduler {
        let queues = (0..nranks)
            .map(|r| {
                let lo = r * ncells / nranks;
                let hi = (r + 1) * ncells / nranks;
                let mut q = VecDeque::new();
                if hi > lo {
                    q.push_back(Segment { lo, hi });
                }
                Mutex::labeled(q, "sweep.cell_queue")
            })
            .collect();
        CellScheduler { queues }
    }

    /// Claim the next cell for `me`: own queue from the back, then steal
    /// peers' fronts round-robin from `me + 1`. A multi-cell segment is
    /// split like the pool splits chunks — back halves go on `me`'s queue
    /// for thieves, the front cell is returned.
    pub(crate) fn next(&self, me: usize) -> Option<usize> {
        let seg = self.find(me)?;
        let Segment { lo, mut hi } = seg;
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2 + (hi - lo) % 2;
            self.queues[me]
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(Segment { lo: mid, hi });
            hi = mid;
        }
        Some(lo)
    }

    /// Hand a claimed cell back to `rank`'s queue. The process-mode
    /// supervisor re-enqueues a dead child's in-flight cell here: pushed at
    /// the *front*, so a thief (or the respawned rank) picks it up before
    /// any untouched segment behind it.
    pub(crate) fn requeue(&self, rank: usize, cell: usize) {
        self.queues[rank]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_front(Segment {
                lo: cell,
                hi: cell + 1,
            });
    }

    fn find(&self, me: usize) -> Option<Segment> {
        if let Some(seg) = self.queues[me]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_back()
        {
            return Some(seg);
        }
        let n = self.queues.len();
        for k in 0..n {
            let q = (me + 1 + k) % n;
            if q == me {
                continue;
            }
            if let Some(seg) = self.queues[q]
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
            {
                return Some(seg);
            }
        }
        None
    }
}

/// One gathered result: `(pending index, executing rank, outcome)`.
pub(crate) type GatheredCell = (usize, usize, CellOutcome);

/// Execute `pending` cells across `nranks` simulated ranks. Returns the
/// `(pending index, executing rank, outcome)` triples gathered on rank 0
/// plus each rank's final communication counters.
///
/// Any rank failure — a panicked rank, a cell's `io::Error`, a malformed
/// gather report — aborts the campaign with an error; cells that finished
/// before the failure are already on disk, so resuming re-runs only the
/// remainder.
pub(crate) fn execute_ranked(
    base: &RunParams,
    pending: &[CellSpec],
    nranks: usize,
) -> io::Result<(Vec<GatheredCell>, Vec<simcomm::CommStats>)> {
    let sched = CellScheduler::new(pending.len(), nranks);
    let serialize = base.faults.is_some() || base.sanitize;

    let run = simcomm::try_run_with_stats(nranks, |mut comm| {
        let rank = comm.rank();
        let mut results: Vec<Value> = Vec::new();
        let mut error: Option<String> = None;
        while let Some(i) = sched.next(rank) {
            let spec = &pending[i];
            let outcome = if serialize {
                let _gate = FAULT_CELL_GATE
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                execute_cell(base, spec, Some((rank, nranks)))
            } else {
                execute_cell(base, spec, Some((rank, nranks)))
            };
            match outcome {
                Ok(out) => results.push(json!({
                    "pending": i,
                    "outcome": out.to_json(),
                })),
                Err(e) => {
                    // Stop claiming work but still report: the queue stays
                    // stealable, and rank 0 must not block on our gather.
                    error = Some(format!(
                        "cell {}.block_{}: {e}",
                        spec.variant.name(),
                        spec.block_size
                    ));
                    break;
                }
            }
        }
        let report = json!({
            "rank": rank,
            "results": Value::Array(results),
            "error": match error {
                Some(e) => Value::String(e),
                None => Value::Null,
            },
        });
        if rank == 0 {
            let mut reports = vec![report];
            for src in 1..comm.size() {
                let bytes = comm.recv_bytes(src, GATHER_TAG);
                let parsed = std::str::from_utf8(&bytes)
                    .ok()
                    .and_then(|s| serde_json::from_str::<Value>(s).ok());
                match parsed {
                    Some(v) => reports.push(v),
                    None => reports.push(json!({
                        "rank": src,
                        "results": Value::Array(Vec::new()),
                        "error": "malformed gather report",
                    })),
                }
            }
            Some(reports)
        } else {
            let bytes = serde_json::to_string(&report)
                .expect("gather report serializes")
                .into_bytes();
            comm.send_bytes(0, GATHER_TAG, &bytes);
            None
        }
    });

    let (mut values, stats) = run.map_err(|p| {
        io::Error::other(format!("sweep rank {} panicked: {}", p.rank, p.message))
    })?;
    let reports = values
        .first_mut()
        .and_then(Option::take)
        .expect("rank 0 returns the gathered reports");

    let mut executed = Vec::new();
    for report in &reports {
        let rank = report
            .get("rank")
            .and_then(Value::as_i64)
            .and_then(|r| usize::try_from(r).ok())
            .unwrap_or(0);
        if let Some(err) = report.get("error").and_then(Value::as_str) {
            return Err(io::Error::other(format!("sweep rank {rank} failed: {err}")));
        }
        for r in report
            .get("results")
            .and_then(Value::as_array)
            .into_iter()
            .flatten()
        {
            let parsed = (|| {
                let i = usize::try_from(r.get("pending")?.as_i64()?).ok()?;
                let outcome = CellOutcome::from_json(r.get("outcome")?)?;
                Some((i, outcome))
            })();
            match parsed {
                Some((i, outcome)) if i < pending.len() => executed.push((i, rank, outcome)),
                _ => {
                    return Err(io::Error::other(format!(
                        "sweep rank {rank} sent a malformed cell result"
                    )))
                }
            }
        }
    }
    Ok((executed, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drain every cell from one rank's viewpoint; with no contention the
    /// owner must see its own shard LIFO-split front-first.
    #[test]
    fn scheduler_hands_out_every_cell_exactly_once() {
        for (ncells, nranks) in [(12, 4), (7, 3), (5, 8), (1, 1), (0, 4)] {
            let sched = CellScheduler::new(ncells, nranks);
            let mut seen = vec![0usize; ncells];
            // Single consumer draining all queues exercises both the own
            // pop-back path and the steal path.
            while let Some(i) = sched.next(0) {
                seen[i] += 1;
            }
            assert!(
                seen.iter().all(|&c| c == 1),
                "ncells={ncells} nranks={nranks}: {seen:?}"
            );
        }
    }

    #[test]
    fn scheduler_initial_shards_are_contiguous_blocks() {
        // Rank 1 of 4 over 12 cells owns [3, 6); untouched by rank 1's own
        // pops, rank 0 steals that whole block front-first.
        let sched = CellScheduler::new(12, 4);
        // Drain rank 0's own shard first.
        for _ in 0..3 {
            let i = sched.next(0).unwrap();
            assert!(i < 3, "rank 0 owns [0,3), got {i}");
        }
        // Next claim steals from rank 1's queue: cell 3 first (front).
        assert_eq!(sched.next(0), Some(3));
    }

    #[test]
    fn requeue_hands_a_cell_back_exactly_once() {
        // Claim a cell (as a child rank would), pretend its executor died,
        // and hand it back: a full drain must still see every cell once.
        let sched = CellScheduler::new(6, 2);
        let first = sched.next(0).unwrap();
        sched.requeue(0, first);
        let mut seen = vec![0usize; 6];
        while let Some(i) = sched.next(1) {
            seen[i] += 1;
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }

    #[test]
    fn concurrent_ranks_partition_the_cells() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let ncells = 37;
        let claims: Vec<AtomicUsize> = (0..ncells).map(|_| AtomicUsize::new(0)).collect();
        let sched = CellScheduler::new(ncells, 4);
        std::thread::scope(|s| {
            for r in 0..4 {
                let sched = &sched;
                let claims = &claims;
                s.spawn(move || {
                    while let Some(i) = sched.next(r) {
                        claims[i].fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert!(claims.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }
}
