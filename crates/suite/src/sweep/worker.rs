//! The child side of a process-isolated rank campaign (`--rank-worker`).
//!
//! A supervisor parent (see [`super::process`]) spawns this worker as a
//! child `rajaperf` process — one per rank — with the campaign's own argv
//! (from [`crate::RunParams::to_argv`]) plus the hidden `--rank-worker R/N`
//! flag. The worker re-plans the identical cell grid from those parameters
//! ([`super::plan_sweep`] is deterministic), so the two processes can talk
//! about cells by grid index alone.
//!
//! # Protocol (line-delimited JSON over stdio)
//!
//! stdout is protocol-only (the suite writes its human output to stderr in
//! worker mode — stderr is captured by the parent and prefixed `[rank N]`):
//!
//! * worker → parent: `{"ready": R}` once the grid is planned,
//!   `{"heartbeat": seq}` every [`HEARTBEAT_INTERVAL`] from a dedicated
//!   thread (liveness even while a long cell runs), and per assignment
//!   either `{"result": {"cell": i, "cached": bool, "outcome": {…}}}` or
//!   `{"failed": {"cell": i, "error": "…"}}`.
//! * parent → worker: `{"cell": i}` (a grid index to execute) and
//!   `{"shutdown": true}`.
//!
//! # Cache discipline
//!
//! Each assignment first consults the cell cache: a hit is returned
//! without re-execution. This is what makes restarts cheap — a child that
//! died *after* finishing a cell but *before* reporting it left an atomic
//! cache record behind, so the re-assigned cell is a cache load, never a
//! re-measurement, and completed cells are never executed twice.
//!
//! # Fault scoping
//!
//! The worker process owns its own process-global `simfault` state:
//! `execute_cell` → `run_suite` installs the spec (resetting draw
//! counters) per cell, exactly as in thread mode — but since no other cell
//! shares this process, no `FAULT_CELL_GATE` serialization is needed and
//! seeded replay stays deterministic per cell regardless of which rank
//! (or which incarnation of it) executes.
//!
//! # Orphan behavior
//!
//! A worker whose parent dies sees EOF on stdin (the supervisor's end of
//! the pipe closes) and exits cleanly after at most the current cell — a
//! `kill -9` of the parent leaves no long-lived orphans. Protocol write
//! failures (`EPIPE` from a dead parent) likewise exit quietly.

use super::{execute_cell, load_cached_cell, CellLoad};
use crate::exec::SuiteExit;
use crate::RunParams;
use serde_json::{json, Value};
use simcomm::transport::write_frame;
use simsched::sync::atomic::{AtomicBool, Ordering};
use simsched::sync::Mutex;
use std::io::{self, BufRead, BufReader};
use std::sync::{Arc, PoisonError};
use std::time::Duration;

/// Cadence of the worker's heartbeat frames. The supervisor's liveness
/// deadline is many multiples of this, so a healthy-but-busy worker can
/// never be mistaken for a wedged one.
pub(crate) const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(500);

/// Test-only hook: a worker whose rank equals this env var's value aborts
/// at boot, before its `ready` frame — a deterministic stand-in for a rank
/// whose node OOM-kills it on startup, used to exercise the supervisor's
/// restart-budget exhaustion and casualty paths.
pub(crate) const TEST_ABORT_ENV: &str = "RAJAPERF_TEST_WORKER_ABORT_RANK";

/// Protocol writer shared between the main loop and the heartbeat thread;
/// frames are line-atomic under the lock.
struct ProtoOut {
    out: Mutex<io::Stdout>,
}

impl ProtoOut {
    fn send(&self, frame: &Value) -> io::Result<()> {
        let mut guard = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        write_frame(&mut *guard, frame).map(|_| ())
    }
}

/// Run the rank-worker loop. Returns the process exit status for `main`:
/// `Success` on clean shutdown, stdin EOF (orphaned), or a vanished parent
/// (`EPIPE`); `Internal` only for local I/O failures reading stdin.
pub(crate) fn run(base: &RunParams) -> SuiteExit {
    let (rank, nranks) = base
        .rank_worker
        .expect("worker mode requires --rank-worker");
    if std::env::var(TEST_ABORT_ENV).ok().as_deref() == Some(rank.to_string().as_str()) {
        eprintln!("rank {rank} aborting at boot ({TEST_ABORT_ENV})");
        std::process::abort();
    }
    let plan = match super::plan_sweep(base) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("rank {rank}: cannot plan sweep grid: {e}");
            return SuiteExit::Internal;
        }
    };

    let out = Arc::new(ProtoOut {
        out: Mutex::labeled(io::stdout(), "sweep.worker_stdout"),
    });
    if out.send(&json!({"ready": rank})).is_err() {
        return SuiteExit::Success;
    }

    // Liveness from a dedicated thread: beats keep flowing while a cell
    // (possibly stalled by injected faults) runs on the main thread. The
    // thread dies with the process; `stop` just quiets a clean shutdown.
    let stop = Arc::new(AtomicBool::new(false));
    {
        let out = Arc::clone(&out);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name(format!("rank-{rank}-heartbeat"))
            .spawn(move || {
                let mut seq: u64 = 0;
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(HEARTBEAT_INTERVAL);
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    seq += 1;
                    if out.send(&json!({"heartbeat": seq})).is_err() {
                        // Parent is gone; nothing left to be alive *for*.
                        std::process::exit(SuiteExit::Success.code());
                    }
                }
            })
            .ok();
    }

    let mut stdin = BufReader::new(io::stdin());
    let exit = worker_loop(base, rank, nranks, &plan, &out, &mut stdin);
    stop.store(true, Ordering::Relaxed);
    exit
}

fn worker_loop<R: BufRead>(
    base: &RunParams,
    rank: usize,
    nranks: usize,
    plan: &super::SweepPlan,
    out: &ProtoOut,
    stdin: &mut R,
) -> SuiteExit {
    loop {
        let frame = match simcomm::transport::read_frame(stdin) {
            // Clean EOF: the supervisor closed our stdin (shutdown) or the
            // parent died; either way the orphan contract is "exit now".
            Ok(None) => return SuiteExit::Success,
            Ok(Some((v, _))) => v,
            Err(e) => {
                eprintln!("rank {rank}: protocol read failed: {e}");
                return SuiteExit::Internal;
            }
        };
        if frame.get("shutdown").is_some() {
            return SuiteExit::Success;
        }
        let Some(index) = frame
            .get("cell")
            .and_then(Value::as_i64)
            .and_then(|i| u64::try_from(i).ok())
        else {
            // Unknown frame kinds are ignored (forward compatibility), but
            // an unparseable assignment is reported, not guessed at.
            continue;
        };
        let reply = match plan.specs.get(index as usize) {
            None => json!({"failed": json!({
                "cell": index,
                "error": format!("cell index {index} is outside the {}-cell grid", plan.specs.len()),
            })}),
            Some(spec) => {
                // A previous incarnation of some rank may have finished
                // this cell and died before reporting it; the atomic cache
                // record is the proof, and reusing it keeps "completed
                // cells never re-execute" true across restarts.
                let cached = match load_cached_cell(&spec.cache, &spec.key, &spec.profile) {
                    CellLoad::Hit(outcome) => Some(outcome),
                    _ => None,
                };
                let was_cached = cached.is_some();
                let outcome = match cached {
                    Some(o) => Ok(o),
                    None => execute_cell(base, spec, Some((rank, nranks))),
                };
                match outcome {
                    Ok(o) => json!({"result": json!({
                        "cell": index,
                        "cached": was_cached,
                        "outcome": o.to_json(),
                    })}),
                    Err(e) => json!({"failed": json!({
                        "cell": index,
                        "error": format!(
                            "cell {}.block_{}: {e}",
                            spec.variant.name(),
                            spec.block_size
                        ),
                    })}),
                }
            }
        };
        if out.send(&reply).is_err() {
            return SuiteExit::Success;
        }
    }
}
