//! Fault-tolerant kernel execution: per-kernel-variant isolation
//! (`catch_unwind`), a spawn-based watchdog timeout, and bounded
//! retry-with-backoff for transient failures — plus the process exit-code
//! taxonomy the `rajaperf` binaries share.
//!
//! On a cluster, one crashed kernel must not take down a campaign cell, and
//! one hung kernel must not stall it forever. [`execute_guarded`] gives the
//! runner that property: every kernel-variant execution is contained, its
//! fate recorded as a [`KernelOutcome`], and the rest of the selection
//! always completes.
//!
//! *Transient* failures — those injected by `simfault` (`err`-mode returns
//! and `simfault:`-prefixed panics, the moral equivalent of a recoverable
//! `cudaErrorLaunchFailure`) — are retried up to [`FaultPolicy::max_retries`]
//! times with linear backoff. Genuine panics are not retried: a real crash
//! is a bug, and rerunning it just crashes again. Timeouts are not retried
//! either: the hung thread cannot be killed (only detached), so retrying a
//! hang would stack abandoned threads.

use kernels::{KernelBase, RunResult, Tuning, VariantId};
use std::time::Duration;

/// How the runner contains kernel failures. `Default` is maximally
/// permissive: no timeout, no retries — every failure is recorded on first
/// occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Wall-clock budget per execution attempt. `None` runs the kernel on
    /// the calling thread with no deadline; `Some` runs it on a watchdog
    /// thread that is abandoned (detached, not killed) if the deadline
    /// passes.
    pub timeout: Option<Duration>,
    /// Retries allowed for *transient* failures (injected `Err` returns and
    /// `simfault:`-prefixed panics). 0 disables retry.
    pub max_retries: u32,
    /// Base backoff slept before retry `k` is `backoff × k` (linear).
    pub retry_backoff: Duration,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            timeout: None,
            max_retries: 0,
            retry_backoff: Duration::from_millis(50),
        }
    }
}

/// The fate of one kernel-variant execution under [`execute_guarded`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelOutcome {
    /// Execution completed (after `retries` transient failures).
    Passed {
        /// Transient failures absorbed before success.
        retries: u32,
    },
    /// Execution panicked (and, if transient, exhausted its retries).
    Failed {
        /// The panic message of the final attempt.
        message: String,
        /// Retries spent before giving up.
        retries: u32,
    },
    /// The watchdog deadline passed; the attempt thread was abandoned.
    TimedOut {
        /// The deadline that was exceeded.
        limit: Duration,
    },
    /// The kernel was not executed at all.
    Skipped {
        /// Why (e.g. "variant not supported").
        reason: String,
    },
}

impl KernelOutcome {
    /// True only for [`KernelOutcome::Passed`].
    pub fn is_pass(&self) -> bool {
        matches!(self, KernelOutcome::Passed { .. })
    }

    /// Short status label for reports: `PASSED`, `RETRIED(n)`, `FAILED`,
    /// `TIMEOUT`, or `SKIPPED`.
    pub fn label(&self) -> String {
        match self {
            KernelOutcome::Passed { retries: 0 } => "PASSED".to_string(),
            KernelOutcome::Passed { retries } => format!("RETRIED({retries})"),
            KernelOutcome::Failed { .. } => "FAILED".to_string(),
            KernelOutcome::TimedOut { .. } => "TIMEOUT".to_string(),
            KernelOutcome::Skipped { .. } => "SKIPPED".to_string(),
        }
    }

    /// One-line detail for reports (empty for a clean pass).
    pub fn detail(&self) -> String {
        match self {
            KernelOutcome::Passed { retries: 0 } => String::new(),
            KernelOutcome::Passed { retries } => {
                format!("succeeded after {retries} transient failure(s)")
            }
            KernelOutcome::Failed { message, retries: 0 } => message.clone(),
            KernelOutcome::Failed { message, retries } => {
                format!("{message} (after {retries} retries)")
            }
            KernelOutcome::TimedOut { limit } => {
                format!("exceeded {:.3}s watchdog deadline", limit.as_secs_f64())
            }
            KernelOutcome::Skipped { reason } => reason.clone(),
        }
    }
}

/// One kernel's outcome within a suite run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutcomeRecord {
    /// Full kernel name.
    pub kernel: String,
    /// Variant executed.
    pub variant: VariantId,
    /// What happened.
    pub outcome: KernelOutcome,
}

/// Extract a readable message from a `catch_unwind` payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Transient failures carry the `simfault:` message prefix — injected
/// faults the retry policy may absorb. Anything else is a genuine crash.
pub fn is_transient(message: &str) -> bool {
    message.starts_with("simfault:")
}

enum AttemptFailure {
    Panic(String),
    Timeout(Duration),
}

/// One contained execution attempt. The `suite.kernel` failpoint is
/// evaluated *inside* the containment, so its `panic`, `err`, and `stall`
/// modes exercise exactly the paths a real kernel failure would.
fn attempt(
    kernel: &'static dyn KernelBase,
    variant: VariantId,
    n: usize,
    reps: usize,
    tuning: Tuning,
    timeout: Option<Duration>,
) -> Result<RunResult, AttemptFailure> {
    // Besides the result, the attempt reports the communication counters it
    // accrued (`simcomm` stats are thread-local): when the watchdog runs it
    // on a spawned thread, the delta is relayed back so the runner thread's
    // totals — which the suite attributes to Caliper regions — still cover
    // comm-group kernels under `--timeout`.
    let guarded = move || {
        let comm_before = simcomm::thread_stats();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Err(e) = simfault::fail_point("suite.kernel") {
                panic!("simfault: {e}");
            }
            kernel.execute(variant, n, reps, &tuning)
        }))
        .map_err(|p| AttemptFailure::Panic(panic_message(&*p)));
        (result, simcomm::thread_stats().since(comm_before))
    };
    match timeout {
        // Calling-thread path: counters accrued directly on this thread;
        // the delta must not be folded in a second time.
        None => guarded().0,
        Some(limit) => {
            // Watchdog: run the attempt on its own thread and wait with a
            // deadline. A thread cannot be killed, so on timeout it is
            // abandoned — it keeps running detached, its eventual result
            // discarded (the channel send fails silently). `simfault`'s
            // scope label is process-global precisely so the spawned
            // attempt still sees the runner's per-kernel scope.
            let (tx, rx) = std::sync::mpsc::channel();
            let spawned = std::thread::Builder::new()
                .name(format!("watchdog:{}", kernel.info().name))
                .spawn(move || {
                    let _ = tx.send(guarded());
                });
            // Spawn can genuinely fail under resource exhaustion (EAGAIN when
            // the process is out of threads) — exactly when a daemon is
            // under load. Contain it as this kernel's failure, not a
            // process-wide panic.
            if let Err(e) = spawned {
                return Err(AttemptFailure::Panic(format!(
                    "watchdog thread spawn failed: {e}"
                )));
            }
            match rx.recv_timeout(limit) {
                Ok((r, comm_delta)) => {
                    simcomm::add_thread_stats(comm_delta);
                    r
                }
                // An abandoned attempt's counters are lost with its thread;
                // the profile under-counts comm for timed-out kernels.
                Err(_) => Err(AttemptFailure::Timeout(limit)),
            }
        }
    }
}

/// Execute one kernel variant under the fault policy: contained
/// (`catch_unwind`), optionally deadlined (watchdog thread), with bounded
/// linear-backoff retry for transient failures. Returns the outcome and,
/// when the kernel passed, its result.
///
/// Suppressing a panic loses nothing here: kernels own their buffers per
/// execution, the device pool recovers per-job (a poisoned submission does
/// not poison the pool), and Caliper regions are unwind-safe since PR 4.
pub fn execute_guarded(
    kernel: &'static dyn KernelBase,
    variant: VariantId,
    n: usize,
    reps: usize,
    tuning: &Tuning,
    policy: &FaultPolicy,
) -> (KernelOutcome, Option<RunResult>) {
    let mut retries = 0u32;
    loop {
        match attempt(kernel, variant, n, reps, *tuning, policy.timeout) {
            Ok(result) => return (KernelOutcome::Passed { retries }, Some(result)),
            Err(AttemptFailure::Timeout(limit)) => {
                // Never retried: the abandoned thread cannot be reclaimed,
                // and a systematic hang would stack one per retry.
                return (KernelOutcome::TimedOut { limit }, None);
            }
            Err(AttemptFailure::Panic(message)) => {
                if is_transient(&message) && retries < policy.max_retries {
                    retries += 1;
                    std::thread::sleep(policy.retry_backoff * retries);
                    continue;
                }
                return (KernelOutcome::Failed { message, retries }, None);
            }
        }
    }
}

/// Process exit codes shared by the `rajaperf` binaries. One enum instead
/// of scattered `std::process::exit` literals, so every exit path is
/// nameable, documented, and testable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteExit {
    /// Everything requested completed cleanly.
    Success,
    /// An internal error (I/O failure, unreadable input).
    Internal,
    /// Bad command-line usage.
    Usage,
    /// Cross-variant checksum validation failed.
    ChecksumFailure,
    /// The sanitizer reported hazards.
    SanitizerFindings,
    /// One or more kernels failed or timed out (partial-failure: the rest
    /// of the selection still completed and reported).
    KernelFailures,
    /// The service refused the request — daemon queue full or shutting
    /// down. Retryable by the client; nothing was executed.
    Unavailable,
}

impl SuiteExit {
    /// The process exit code.
    pub fn code(self) -> i32 {
        match self {
            SuiteExit::Success => 0,
            SuiteExit::Internal => 1,
            SuiteExit::Usage => 2,
            SuiteExit::ChecksumFailure => 3,
            SuiteExit::SanitizerFindings => 4,
            SuiteExit::KernelFailures => 5,
            SuiteExit::Unavailable => 6,
        }
    }

    /// Exit the process with this code.
    pub fn exit(self) -> ! {
        std::process::exit(self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(name: &str) -> &'static dyn KernelBase {
        use std::sync::OnceLock;
        static FIXTURES: OnceLock<Vec<Box<dyn KernelBase>>> = OnceLock::new();
        FIXTURES
            .get_or_init(kernels::faulty::all)
            .iter()
            .find(|k| k.info().name == name)
            .map(|k| k.as_ref())
            .unwrap_or_else(|| panic!("no fixture {name}"))
    }

    #[test]
    fn outcome_labels_and_pass_predicate() {
        assert_eq!(KernelOutcome::Passed { retries: 0 }.label(), "PASSED");
        assert_eq!(KernelOutcome::Passed { retries: 2 }.label(), "RETRIED(2)");
        assert!(KernelOutcome::Passed { retries: 2 }.is_pass());
        let failed = KernelOutcome::Failed {
            message: "boom".into(),
            retries: 0,
        };
        assert_eq!(failed.label(), "FAILED");
        assert!(!failed.is_pass());
        assert_eq!(
            KernelOutcome::TimedOut {
                limit: Duration::from_secs(1)
            }
            .label(),
            "TIMEOUT"
        );
        assert_eq!(
            KernelOutcome::Skipped {
                reason: "x".into()
            }
            .label(),
            "SKIPPED"
        );
    }

    #[test]
    fn exit_codes_are_stable() {
        assert_eq!(SuiteExit::Success.code(), 0);
        assert_eq!(SuiteExit::Internal.code(), 1);
        assert_eq!(SuiteExit::Usage.code(), 2);
        assert_eq!(SuiteExit::ChecksumFailure.code(), 3);
        assert_eq!(SuiteExit::SanitizerFindings.code(), 4);
        assert_eq!(SuiteExit::KernelFailures.code(), 5);
        assert_eq!(SuiteExit::Unavailable.code(), 6);
    }

    #[test]
    fn transient_classification_is_prefix_based() {
        assert!(is_transient("simfault: injected error at failpoint 'x'"));
        assert!(!is_transient("index out of bounds"));
        assert!(!is_transient("kernel mentions simfault: later"));
    }

    #[test]
    fn panicking_kernel_is_contained_not_fatal() {
        let (outcome, result) = execute_guarded(
            fixture("Fixture_PANIC"),
            VariantId::BaseSeq,
            64,
            1,
            &Tuning::default(),
            &FaultPolicy::default(),
        );
        assert!(result.is_none());
        match outcome {
            KernelOutcome::Failed { message, retries } => {
                assert!(message.contains("Fixture_PANIC"), "{message}");
                assert_eq!(retries, 0, "genuine crashes are never retried");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn genuine_panic_is_not_retried_even_with_retry_budget() {
        let policy = FaultPolicy {
            max_retries: 3,
            retry_backoff: Duration::from_millis(1),
            ..FaultPolicy::default()
        };
        let (outcome, _) = execute_guarded(
            fixture("Fixture_PANIC"),
            VariantId::BaseSeq,
            64,
            1,
            &Tuning::default(),
            &policy,
        );
        assert_eq!(
            outcome,
            KernelOutcome::Failed {
                message: "Fixture_PANIC crashed deliberately at n=64".into(),
                retries: 0,
            }
        );
    }

    #[test]
    fn watchdog_cuts_a_hung_kernel_loose() {
        let limit = Duration::from_millis(150);
        // Deliberately real wall-clock: the watchdog cuts hung kernels loose
        // in real time, so the bound below must be measured in real time.
        #[allow(clippy::disallowed_methods)]
        let started = std::time::Instant::now();
        let (outcome, result) = execute_guarded(
            fixture("Fixture_HANG"),
            VariantId::BaseSeq,
            64,
            1,
            &Tuning::default(),
            &FaultPolicy {
                timeout: Some(limit),
                ..FaultPolicy::default()
            },
        );
        let waited = started.elapsed();
        assert_eq!(outcome, KernelOutcome::TimedOut { limit });
        assert!(result.is_none());
        assert!(
            waited < kernels::faulty::HANG_TOTAL,
            "watchdog must not wait out the hang ({waited:?})"
        );
    }

    #[test]
    fn healthy_kernel_passes_under_watchdog() {
        let (outcome, result) = execute_guarded(
            kernels::find("Basic_DAXPY").unwrap(),
            VariantId::BaseSeq,
            1000,
            1,
            &Tuning::default(),
            &FaultPolicy {
                timeout: Some(Duration::from_secs(30)),
                ..FaultPolicy::default()
            },
        );
        assert_eq!(outcome, KernelOutcome::Passed { retries: 0 });
        assert!(result.unwrap().checksum.is_finite());
    }
}
