//! `rajaperf-analyze`: Thicket-style analysis over a directory of
//! `.cali.json` profiles — the command-line face of the paper's §II-D
//! analysis workflow.
//!
//! ```text
//! rajaperf-analyze <dir|file.tkt> [--groupby KEY] [--metric COLUMN]
//!                  [--tree] [--csv] [--save-tkt FILE]
//! ```
//!
//! The input is either a directory of `.cali.json` profiles or a chunked
//! columnar `.tkt` snapshot written by a previous `--save-tkt` run —
//! reopening a snapshot skips JSON parsing entirely.
//!
//! Corrupt or truncated profiles (e.g. torn by a mid-write kill) are skipped
//! with a warning rather than aborting the composition; the exit codes match
//! `rajaperf` ([`SuiteExit`]): 0 success, 1 internal error, 2 usage error.

use suite::SuiteExit;
use thicket::{Stat, Thicket};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" {
        eprintln!(
            "usage: rajaperf-analyze <profile-dir|file.tkt> [--groupby KEY] [--metric COLUMN] [--tree] [--csv] [--save-tkt FILE]"
        );
        if args.is_empty() {
            SuiteExit::Usage.exit();
        }
        return;
    }
    let dir = std::path::Path::new(&args[0]);
    let mut groupby: Option<String> = None;
    let mut metric = "avg#time.duration".to_string();
    let mut show_tree = false;
    let mut show_csv = false;
    let mut save_tkt: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--groupby" => groupby = it.next().cloned(),
            "--metric" => {
                if let Some(m) = it.next() {
                    metric = m.clone();
                }
            }
            "--tree" => show_tree = true,
            "--csv" => show_csv = true,
            "--save-tkt" => save_tkt = it.next().cloned(),
            other => {
                eprintln!("unknown option {other}");
                SuiteExit::Usage.exit();
            }
        }
    }

    let mut tk = if dir.is_file() && dir.extension().is_some_and(|e| e == "tkt") {
        // Reopen a columnar snapshot: no JSON parsing, no re-composition.
        match Thicket::read_tkt(dir) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot open {}: {e}", dir.display());
                SuiteExit::Internal.exit();
            }
        }
    } else {
        // Collect every *.cali.json profile in the directory; ingestion
        // itself tolerates (and reports) unreadable or malformed files.
        let mut paths = Vec::new();
        let entries = match std::fs::read_dir(dir) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("cannot read {}: {e}", dir.display());
                SuiteExit::Internal.exit();
            }
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.to_string_lossy().ends_with(".cali.json") {
                paths.push(path);
            }
        }
        paths.sort();
        let (tk, stats) = Thicket::from_files(&paths);
        for (path, reason) in &stats.skipped {
            eprintln!("warning: skipping {}: {reason}", path.display());
        }
        if stats.warnings() > 0 {
            eprintln!(
                "warning: {} of {} profile(s) skipped as unreadable or malformed",
                stats.warnings(),
                paths.len()
            );
        }
        if stats.ingested == 0 {
            eprintln!("no usable .cali.json profiles found in {}", dir.display());
            SuiteExit::Internal.exit();
        }
        tk
    };
    println!(
        "composed {} profiles, {} call-tree nodes, {} metric columns",
        tk.profiles.len(),
        tk.nodes.len(),
        tk.column_names().len()
    );

    if let Some(key) = groupby {
        println!("\ngroups by '{key}':");
        for (value, sub) in tk.groupby(&key) {
            println!("  {key}={value}: {} profiles", sub.profiles.len());
        }
    }

    // Statsframe over the requested metric.
    let mean = tk.stats(&metric, Stat::Mean);
    let mn = tk.stats(&metric, Stat::Min);
    let mx = tk.stats(&metric, Stat::Max);
    println!("\n{:<40} {:>14} {:>14} {:>14}", "node", "mean", "min", "max");
    for nid in 0..tk.nodes.len() {
        let m = tk.stat_value(&mean, nid).unwrap_or(f64::NAN);
        if m.is_nan() {
            continue;
        }
        println!(
            "{:<40} {:>14.6e} {:>14.6e} {:>14.6e}",
            tk.nodes[nid].path.join("/"),
            m,
            tk.stat_value(&mn, nid).unwrap_or(f64::NAN),
            tk.stat_value(&mx, nid).unwrap_or(f64::NAN),
        );
    }

    if show_tree {
        println!("\ncall tree ({metric}, mean over profiles):");
        print!("{}", tk.tree(&metric));
    }
    if show_csv {
        print!("{}", tk.to_csv());
    }
    if let Some(out) = save_tkt {
        if let Err(e) = tk.write_tkt(std::path::Path::new(&out)) {
            eprintln!("cannot write {out}: {e}");
            SuiteExit::Internal.exit();
        }
        println!("\nsaved columnar snapshot to {out}");
    }
}
