//! The `rajaperf` command-line driver.
//!
//! Mirrors the upstream RAJAPerf executable: select kernels, a variant, a
//! tuning, and problem sizing on the command line; run the suite; print the
//! timing report; optionally emit Caliper profiles.
//!
//! ```text
//! rajaperf --groups Stream --variant RAJA_Par --caliper runtime-report,output=stdout
//! rajaperf --kernels Stream_TRIAD --size 8000000 --caliper 'spot(output=triad.cali.json)'
//! rajaperf --list
//! ```

use suite::{run_suite, RunParams};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", RunParams::usage());
        return;
    }
    if args.iter().any(|a| a == "--list") {
        print_kernel_list();
        return;
    }
    let checksums_mode = args.iter().any(|a| a == "--checksums");
    let filtered: Vec<String> = args.into_iter().filter(|a| a != "--checksums").collect();
    let params = match RunParams::parse(&filtered) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprint!("{}", RunParams::usage());
            std::process::exit(2);
        }
    };
    if params.sweep {
        // Batched orchestrator: the full variants x block-size cross-product,
        // one profile per cell plus a manifest, with per-cell caching.
        match suite::run_sweep(&params) {
            Ok(summary) => {
                print!("{}", summary.render());
                println!("wrote {}", summary.manifest.display());
            }
            Err(e) => {
                eprintln!("error: sweep failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if checksums_mode {
        // Validate every supported variant of the selection against the
        // Base_Seq reference (upstream's checksum report).
        let variants = kernels::VariantId::all();
        let reports = suite::run_variants(&params, &variants);
        let cr = suite::checksum_report(&reports);
        print!("{}", cr.render());
        if cr.all_pass() {
            println!("ALL CHECKSUMS PASS");
        } else {
            println!("CHECKSUM FAILURES DETECTED");
            std::process::exit(1);
        }
        return;
    }
    let report = run_suite(&params);
    print!("{}", report.render_timing());
    if let Some(section) = &report.sanitize {
        println!();
        print!("{}", section.render());
    }
    for path in &report.outputs {
        println!("wrote {}", path.display());
    }
    if report.sanitize.as_ref().is_some_and(|s| !s.all_clean()) {
        std::process::exit(1);
    }
}

fn print_kernel_list() {
    println!(
        "{:<28} {:<10} {:>12} {:>6}  {:<8} variants",
        "Kernel", "Group", "DefaultSize", "Reps", "Complex."
    );
    for k in kernels::registry() {
        let info = k.info();
        let variants: Vec<&str> = info.variants.iter().map(|v| v.name()).collect();
        println!(
            "{:<28} {:<10} {:>12} {:>6}  {:<8} {}",
            info.name,
            info.group.name(),
            info.default_size,
            info.default_reps,
            info.complexity.label(),
            variants.join(",")
        );
    }
}
