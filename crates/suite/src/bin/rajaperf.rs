//! The `rajaperf` command-line driver.
//!
//! Mirrors the upstream RAJAPerf executable: select kernels, a variant, a
//! tuning, and problem sizing on the command line; run the suite; print the
//! timing report; optionally emit Caliper profiles.
//!
//! ```text
//! rajaperf --groups Stream --variant RAJA_Par --caliper runtime-report,output=stdout
//! rajaperf --kernels Stream_TRIAD --size 8000000 --caliper 'spot(output=triad.cali.json)'
//! rajaperf --list
//! ```
//!
//! Exit codes follow [`SuiteExit`]: 0 success, 1 internal error, 2 usage
//! error, 3 checksum failures, 4 sanitizer findings, 5 kernel failures.

use suite::{run_suite, RunParams, SuiteExit};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", RunParams::usage());
        return;
    }
    if args.iter().any(|a| a == "--list") {
        print_kernel_list();
        return;
    }
    let checksums_mode = args.iter().any(|a| a == "--checksums");
    let mut filtered: Vec<String> = args.into_iter().filter(|a| a != "--checksums").collect();
    // `SIMFAULT` env is the ambient form of `--faults`; the explicit flag
    // wins. Routing it through the normal argument path gets it the same
    // validation (spec grammar, known failpoints, --sanitize conflict).
    if !filtered.iter().any(|a| a == "--faults") {
        if let Ok(spec) = std::env::var("SIMFAULT") {
            if !spec.trim().is_empty() {
                filtered.push("--faults".to_string());
                filtered.push(spec);
            }
        }
    }
    let params = match RunParams::parse(&filtered) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprint!("{}", RunParams::usage());
            SuiteExit::Usage.exit();
        }
    };
    if params.rank_worker.is_some() {
        // Child-rank worker of a process-isolated campaign: speak the
        // gather protocol on stdio and never print a human report.
        suite::run_rank_worker(&params).exit();
    }
    if params.sweep {
        // Batched orchestrator: the full variants x block-size cross-product,
        // one profile per cell plus a manifest, with per-cell caching.
        match suite::run_sweep(&params) {
            Ok(summary) => {
                print!("{}", summary.render());
                println!("wrote {}", summary.manifest.display());
                if summary.kernels_failed() > 0 {
                    SuiteExit::KernelFailures.exit();
                }
            }
            Err(e) => {
                eprintln!("error: sweep failed: {e}");
                // A process campaign whose child rejected the supervisor's
                // command line is a usage disagreement, not an internal
                // fault; the supervisor tags it InvalidInput.
                if e.kind() == std::io::ErrorKind::InvalidInput {
                    SuiteExit::Usage.exit();
                }
                SuiteExit::Internal.exit();
            }
        }
        return;
    }
    if checksums_mode {
        // Validate every supported variant of the selection against the
        // Base_Seq reference (upstream's checksum report).
        let variants = kernels::VariantId::all();
        let reports = suite::run_variants(&params, &variants);
        let cr = suite::checksum_report(&reports);
        print!("{}", cr.render());
        if reports.iter().any(|r| !r.all_passed()) {
            // Kernel failures poke holes in the checksum grid; report them
            // as the stronger condition.
            for r in &reports {
                if !r.all_passed() {
                    println!();
                    print!("{}", r.render_outcomes());
                }
            }
            SuiteExit::KernelFailures.exit();
        }
        if cr.all_pass() {
            println!("ALL CHECKSUMS PASS");
        } else {
            println!("CHECKSUM FAILURES DETECTED");
            SuiteExit::ChecksumFailure.exit();
        }
        return;
    }
    let report = run_suite(&params);
    print!("{}", report.render_timing());
    if params.faults.is_some() || !report.all_passed() {
        println!();
        print!("{}", report.render_outcomes());
    }
    if let Some(section) = &report.sanitize {
        println!();
        print!("{}", section.render());
    }
    if let Some(lock_order) = &report.lock_order {
        println!();
        print!("{lock_order}");
    }
    for path in &report.outputs {
        println!("wrote {}", path.display());
    }
    if !report.all_passed() {
        SuiteExit::KernelFailures.exit();
    }
    if report.sanitize.as_ref().is_some_and(|s| !s.all_clean()) {
        SuiteExit::SanitizerFindings.exit();
    }
}

fn print_kernel_list() {
    println!(
        "{:<28} {:<10} {:>12} {:>6}  {:<8} variants",
        "Kernel", "Group", "DefaultSize", "Reps", "Complex."
    );
    for k in kernels::registry() {
        let info = k.info();
        let variants: Vec<&str> = info.variants.iter().map(|v| v.name()).collect();
        println!(
            "{:<28} {:<10} {:>12} {:>6}  {:<8} {}",
            info.name,
            info.group.name(),
            info.default_size,
            info.default_reps,
            info.complexity.label(),
            variants.join(",")
        );
    }
}
