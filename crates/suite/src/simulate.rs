//! The simulated-hardware analysis pipeline behind the paper's evaluation.
//!
//! Everything here operates at the paper's scale: a constant node-level
//! problem size of 32,000,000 (Table III) decomposed over each machine's
//! rank count, with the per-kernel [`perfmodel::ExecSignature`]s driving
//! the TMA, roofline, and execution-time models. The outputs are the exact
//! data series of Figs. 3–10 and the cluster analysis of §IV.

use kernels::{Group, KernelBase};
use perfmodel::{
    predict_time, roofline_point, tma_breakdown, CacheLevel, Complexity, ExecSignature, Machine,
    MachineId, RooflinePoint, TmaBreakdown,
};
use std::collections::BTreeMap;

/// The paper's per-node problem size (Table III).
pub const NODE_PROBLEM_SIZE: usize = 32_000_000;

/// One kernel's simulated measurements across all four machines.
#[derive(Debug, Clone)]
pub struct KernelSim {
    /// Full kernel name.
    pub name: String,
    /// Group name.
    pub group: String,
    /// Signature at the node problem size.
    pub signature: ExecSignature,
    /// TMA breakdowns on the CPU machines (SPR-DDR, SPR-HBM).
    pub tma: BTreeMap<MachineId, TmaBreakdown>,
    /// Predicted per-rep execution time on each machine, seconds.
    pub time: BTreeMap<MachineId, f64>,
    /// Speedup over SPR-DDR on each machine.
    pub speedup: BTreeMap<MachineId, f64>,
    /// Achieved node bandwidth, B/s, per machine.
    pub bandwidth: BTreeMap<MachineId, f64>,
    /// Achieved node FLOP rate, FLOP/s, per machine.
    pub flops: BTreeMap<MachineId, f64>,
}

impl KernelSim {
    /// The SPR-DDR Memory Bound TMA metric (Fig. 9, leftmost panel).
    pub fn memory_bound_ddr(&self) -> f64 {
        self.tma[&MachineId::SprDdr].memory_bound
    }
}

/// Simulate one kernel across the four machines at the node problem size.
pub fn simulate_kernel(kernel: &dyn KernelBase) -> KernelSim {
    let info = kernel.info();
    let sig = kernel.signature(NODE_PROBLEM_SIZE);
    let mut tma = BTreeMap::new();
    let mut time = BTreeMap::new();
    let mut speedup = BTreeMap::new();
    let mut bandwidth = BTreeMap::new();
    let mut flops = BTreeMap::new();
    let baseline = Machine::get(MachineId::SprDdr);
    let t0 = predict_time(&baseline, &sig).total_s;
    for id in MachineId::all() {
        let m = Machine::get(id);
        let t = predict_time(&m, &sig);
        time.insert(id, t.total_s);
        speedup.insert(id, if t.total_s > 0.0 { t0 / t.total_s } else { 0.0 });
        bandwidth.insert(id, perfmodel::predict::achieved_bandwidth(&m, &sig, &t));
        flops.insert(id, perfmodel::predict::achieved_flops(&m, &sig, &t));
        if m.kind == perfmodel::MachineKind::Cpu {
            tma.insert(id, tma_breakdown(&m, &sig));
        }
    }
    KernelSim {
        name: info.name.to_string(),
        group: info.group.name().to_string(),
        signature: sig,
        tma,
        time,
        speedup,
        bandwidth,
        flops,
    }
}

/// Simulate the whole suite.
pub fn simulate_all() -> Vec<KernelSim> {
    kernels::registry()
        .iter()
        .map(|k| simulate_kernel(k.as_ref()))
        .collect()
}

/// Whether a kernel enters the cross-architecture comparison of §IV.
///
/// The paper excludes 12 of 75 kernels whose decomposition makes the work
/// incomparable across rank counts: the Comm kernels and every kernel with
/// complexity other than O(N).
pub fn in_comparison(kernel: &dyn KernelBase) -> bool {
    let info = kernel.info();
    info.group != Group::Comm && info.complexity == Complexity::N
}

/// Simulate only the comparison kernels (the clustering population).
pub fn simulate_comparison() -> Vec<KernelSim> {
    kernels::registry()
        .iter()
        .filter(|k| in_comparison(k.as_ref()))
        .map(|k| simulate_kernel(k.as_ref()))
        .collect()
}

/// The five-component TMA tuple used for clustering (§IV): SPR-DDR
/// `[frontend, bad_speculation, retiring, core, memory]`.
pub fn cluster_tuple(sim: &KernelSim) -> Vec<f64> {
    sim.tma[&MachineId::SprDdr].tuple().to_vec()
}

/// The §IV clustering: Ward linkage over the SPR-DDR TMA tuples, cut to
/// yield (at most) `target_clusters` flat clusters.
pub struct ClusterAnalysis {
    /// Simulated kernels in clustering order.
    pub sims: Vec<KernelSim>,
    /// The linkage tree.
    pub linkage: hierclust::LinkageResult,
    /// The distance threshold used for the flat cut.
    pub threshold: f64,
    /// Flat cluster label per kernel.
    pub labels: Vec<usize>,
}

impl ClusterAnalysis {
    /// Run the paper's clustering (4 clusters, as Fig. 6/7).
    pub fn run(target_clusters: usize) -> ClusterAnalysis {
        let sims = simulate_comparison();
        let points: Vec<Vec<f64>> = sims.iter().map(cluster_tuple).collect();
        let linkage = hierclust::linkage(&points, hierclust::Linkage::Ward);
        let threshold = linkage.threshold_for_clusters(target_clusters);
        let labels = linkage.fcluster(threshold);
        ClusterAnalysis {
            sims,
            linkage,
            threshold,
            labels,
        }
    }

    /// Number of flat clusters.
    pub fn num_clusters(&self) -> usize {
        self.labels.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// Silhouette-guided cluster-count selection over `kmin..=kmax`,
    /// quantifying the paper's by-inspection threshold choice. Does not
    /// change `labels`/`threshold`; callers report it as an annotation.
    pub fn silhouette_selection(&self, kmin: usize, kmax: usize) -> hierclust::KSelection {
        let points: Vec<Vec<f64>> = self.sims.iter().map(cluster_tuple).collect();
        hierclust::select_clusters(&points, &self.linkage, kmin, kmax)
    }

    /// Mean TMA tuple per cluster (Fig. 7 middle table, first five columns).
    pub fn cluster_tma_means(&self) -> Vec<[f64; 5]> {
        let k = self.num_clusters();
        let mut sums = vec![[0.0f64; 5]; k];
        let mut counts = vec![0usize; k];
        for (sim, &label) in self.sims.iter().zip(&self.labels) {
            let t = self.sims_tuple(sim);
            for (s, v) in sums[label].iter_mut().zip(t) {
                *s += v;
            }
            counts[label] += 1;
        }
        for (s, &c) in sums.iter_mut().zip(&counts) {
            if c > 0 {
                for v in s.iter_mut() {
                    *v /= c as f64;
                }
            }
        }
        sums
    }

    fn sims_tuple(&self, sim: &KernelSim) -> [f64; 5] {
        sim.tma[&MachineId::SprDdr].tuple()
    }

    /// Mean speedup per cluster on a machine (Fig. 7 rightmost columns).
    pub fn cluster_speedup_means(&self, machine: MachineId) -> Vec<f64> {
        let k = self.num_clusters();
        let mut sums = vec![0.0f64; k];
        let mut counts = vec![0usize; k];
        for (sim, &label) in self.sims.iter().zip(&self.labels) {
            sums[label] += sim.speedup[&machine];
            counts[label] += 1;
        }
        sums.iter()
            .zip(&counts)
            .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
            .collect()
    }

    /// Per-cluster membership counts by group (Fig. 7 top table).
    pub fn group_distribution(&self) -> BTreeMap<String, Vec<usize>> {
        let k = self.num_clusters();
        let mut dist: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (sim, &label) in self.sims.iter().zip(&self.labels) {
            dist.entry(sim.group.clone())
                .or_insert_with(|| vec![0; k])[label] += 1;
        }
        dist
    }

    /// Index of the most memory-bound cluster (the paper's Cluster 2).
    pub fn most_memory_bound_cluster(&self) -> usize {
        self.cluster_tma_means()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1[4].total_cmp(&b.1[4]))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Index of the most core-bound cluster (the paper's Cluster 3).
    pub fn most_core_bound_cluster(&self) -> usize {
        self.cluster_tma_means()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1[3].total_cmp(&b.1[3]))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Roofline points for every kernel at each cache level on a GPU machine
/// (Fig. 5).
pub fn roofline_all(machine: MachineId) -> Vec<(String, String, [RooflinePoint; 3])> {
    let m = Machine::get(machine);
    kernels::registry()
        .iter()
        .map(|k| {
            let info = k.info();
            let sig = k.signature(NODE_PROBLEM_SIZE);
            (
                info.name.to_string(),
                info.group.name().to_string(),
                [
                    roofline_point(&m, &sig, CacheLevel::L1),
                    roofline_point(&m, &sig, CacheLevel::L2),
                    roofline_point(&m, &sig, CacheLevel::Hbm),
                ],
            )
        })
        .collect()
}

/// Write the simulated measurements as Caliper-style profiles, one per
/// machine, for consumption by `thicket` (the §II-D pipeline end-to-end).
pub fn write_simulated_profiles(dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for id in MachineId::all() {
        let m = Machine::get(id);
        let session = caliper::Session::new();
        session.set_global("machine", m.id.shorthand());
        session.set_global("variant", m.variant);
        session.set_global("ranks", m.ranks as i64);
        session.set_global("problem_size", NODE_PROBLEM_SIZE as i64);
        {
            let _root = session.region("RAJAPerf");
            for k in kernels::registry() {
                let info = k.info();
                let sig = k.signature(NODE_PROBLEM_SIZE);
                let t = predict_time(&m, &sig);
                let _g = session.region(info.group.name());
                let r = session.region(info.name);
                session.set_metric("PredictedTime/Rep", t.total_s);
                session.set_metric("Bytes/Rep", sig.bytes_total());
                session.set_metric("Flops/Rep", sig.flops);
                if m.kind == perfmodel::MachineKind::Cpu {
                    let tma = tma_breakdown(&m, &sig);
                    session.set_metric("tma.frontend_bound", tma.frontend_bound);
                    session.set_metric("tma.bad_speculation", tma.bad_speculation);
                    session.set_metric("tma.retiring", tma.retiring);
                    session.set_metric("tma.core_bound", tma.core_bound);
                    session.set_metric("tma.memory_bound", tma.memory_bound);
                } else {
                    for level in CacheLevel::all() {
                        let p = roofline_point(&m, &sig, level);
                        session.set_metric(
                            &format!("roofline.{}.intensity", level.name()),
                            p.intensity,
                        );
                        session
                            .set_metric(&format!("roofline.{}.gips", level.name()), p.warp_gips);
                    }
                }
                r.end();
            }
        }
        let path = dir.join(format!("sim_{}.cali.json", m.id.shorthand()));
        session.profile().write_file(&path)?;
        written.push(path);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_excludes_twelve_of_seventy_six() {
        let total = kernels::registry().len();
        let kept = kernels::registry()
            .iter()
            .filter(|k| in_comparison(k.as_ref()))
            .count();
        // Paper: 12 of 75 excluded. Our Table I census has 76 kernels; the
        // same rule (Comm + non-O(N)) excludes 12.
        assert_eq!(total, 76);
        assert_eq!(total - kept, 12, "excluded {}", total - kept);
    }

    #[test]
    fn triad_simulation_matches_machine_ceilings() {
        let k = kernels::find("Stream_TRIAD").unwrap();
        let sim = simulate_kernel(k);
        let hbm = Machine::get(MachineId::SprHbm);
        let bw = sim.bandwidth[&MachineId::SprHbm];
        assert!(
            (bw / hbm.achieved_bw_node - 1.0).abs() < 0.1,
            "TRIAD bandwidth {bw:e}"
        );
        assert!(sim.speedup[&MachineId::SprDdr] == 1.0);
        assert!(sim.speedup[&MachineId::EpycMi250x] > 15.0);
    }

    #[test]
    fn clustering_produces_four_clusters() {
        let ca = ClusterAnalysis::run(4);
        assert_eq!(ca.num_clusters(), 4);
        assert_eq!(ca.labels.len(), ca.sims.len());
        let means = ca.cluster_tma_means();
        for m in &means {
            let sum: f64 = m.iter().sum();
            assert!((sum - 1.0).abs() < 0.05, "cluster mean tuple sums to ~1");
        }
    }

    #[test]
    fn memory_bound_cluster_has_highest_speedups() {
        // The paper's headline result: the most memory-bound cluster gains
        // the most on the higher-bandwidth machines. On the V100 the
        // retiring-bound cluster contains the paper's own exception
        // kernels (INIT_VIEW1D, NESTED_INIT, MEMSET "perform better on the
        // P9-V100 even though they do not exhibit memory constraints",
        // §V-B), so there we require the memory cluster to be within 10%
        // of the best mean rather than strictly first.
        let ca = ClusterAnalysis::run(4);
        let mem = ca.most_memory_bound_cluster();
        for machine in [MachineId::SprHbm, MachineId::EpycMi250x] {
            let speedups = ca.cluster_speedup_means(machine);
            let best = speedups
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap();
            assert_eq!(
                best, mem,
                "{machine:?}: memory-bound cluster should lead, speedups {speedups:?}"
            );
        }
        let v100 = ca.cluster_speedup_means(MachineId::P9V100);
        let best = v100.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            v100[mem] > 0.9 * best,
            "V100: memory cluster {} vs best {best}",
            v100[mem]
        );
    }

    #[test]
    fn least_memory_bound_clusters_gain_least_on_hbm() {
        // Fig. 8's other end: clusters that are not memory bound see no
        // benefit from the bandwidth-only upgrade (means ≤ ~1).
        let ca = ClusterAnalysis::run(4);
        let means = ca.cluster_tma_means();
        let hbm = ca.cluster_speedup_means(MachineId::SprHbm);
        for (i, m) in means.iter().enumerate() {
            if m[4] < 0.2 {
                assert!(hbm[i] < 1.2, "cluster {i} mem {:.2} hbm {:.2}", m[4], hbm[i]);
            }
        }
    }

    #[test]
    fn stream_kernels_land_in_the_memory_bound_cluster() {
        // Fig. 7: four of the five Stream kernels are in the most
        // memory-bound cluster; DOT (the dependent-accumulation reduction)
        // is the one the paper places elsewhere.
        let ca = ClusterAnalysis::run(4);
        let mem = ca.most_memory_bound_cluster();
        for (sim, &label) in ca.sims.iter().zip(&ca.labels) {
            if sim.group == "Stream" && sim.name != "Stream_DOT" {
                assert_eq!(label, mem, "{} in cluster {label}", sim.name);
            }
        }
    }

    #[test]
    fn simulated_profiles_roundtrip_through_thicket() {
        let dir = std::env::temp_dir().join("rajaperf_sim_profiles_test");
        let _ = std::fs::remove_dir_all(&dir);
        let paths = write_simulated_profiles(&dir).unwrap();
        assert_eq!(paths.len(), 4);
        let profiles: Vec<thicket::ProfileData> = paths
            .iter()
            .map(|p| thicket::ProfileData::read_file(p).unwrap())
            .collect();
        let t = thicket::Thicket::from_profiles(&profiles);
        assert_eq!(t.profiles.len(), 4);
        let nid = t.node_by_name("Stream_TRIAD").unwrap();
        // TMA metrics exist only for the CPU machines' profiles.
        let vals = t.node_values("tma.memory_bound", nid);
        assert_eq!(vals.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn roofline_points_exist_for_all_kernels() {
        let points = roofline_all(MachineId::P9V100);
        assert_eq!(points.len(), 76);
        for (name, _, levels) in &points {
            for p in levels {
                assert!(p.warp_gips >= 0.0, "{name}");
                assert!(p.intensity >= 0.0, "{name}");
            }
        }
    }
}
