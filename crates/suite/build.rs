//! Build-script fingerprint for the content-addressed caches.
//!
//! Sweep cells and daemon store entries must never be served across a code
//! change: a profile measured by an older binary silently answering for a
//! rebuilt one is a stale-cache bug (the regression PR 7 fixes). The
//! fingerprint baked in here — the git commit when available, else the
//! crate version alone — is folded into every cache key via
//! [`suite::code_version`].

use std::process::Command;

fn git_fingerprint() -> Option<String> {
    let out = Command::new("git")
        .args(["rev-parse", "--short=16", "HEAD"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let hash = String::from_utf8(out.stdout).ok()?.trim().to_string();
    if hash.is_empty() {
        None
    } else {
        Some(hash)
    }
}

fn main() {
    // An explicit env override wins (lets CI pin a fingerprint); then the
    // git commit; then a constant that at least still varies with the crate
    // version through code_version()'s "<version>+<fingerprint>" format.
    println!("cargo:rerun-if-env-changed=RAJAPERF_BUILD_FINGERPRINT");
    let fp = std::env::var("RAJAPERF_BUILD_FINGERPRINT")
        .ok()
        .filter(|s| !s.trim().is_empty())
        .or_else(git_fingerprint)
        .unwrap_or_else(|| "unversioned".to_string());
    println!("cargo:rustc-env=RAJAPERF_BUILD_FINGERPRINT={fp}");
    // Rebuilding after a commit must refresh the fingerprint: track the git
    // HEAD files when they exist (harmless when they do not).
    for probe in ["../../.git/HEAD", "../../.git/index"] {
        if std::path::Path::new(probe).exists() {
            println!("cargo:rerun-if-changed={probe}");
        }
    }
}
