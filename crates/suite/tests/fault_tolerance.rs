//! Fault-tolerance integration tests: per-kernel isolation, deterministic
//! retry under injected transient failures, exit codes, and crash-safe
//! `--sweep` resume after a `kill -9`.
//!
//! Tests that arm simfault in-process (directly or via `run_suite` with a
//! fault spec) serialize on [`GATE`] — simfault's armed state is global.
//! End-to-end tests drive the built `rajaperf` binary in child processes
//! and need no gate.

use std::path::Path;
use std::process::Command;
use simsched::sync::Mutex;
use std::time::Duration;

use suite::{run_suite, KernelOutcome, RunParams, Selection};

static GATE: Mutex<()> = Mutex::new(());

fn gate() -> simsched::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn base_params(kernels: &[&str]) -> RunParams {
    RunParams {
        selection: Selection::Kernels(kernels.iter().map(|s| s.to_string()).collect()),
        explicit_size: Some(1000),
        explicit_reps: Some(2),
        ..RunParams::default()
    }
}

// ---------------------------------------------------------------------------
// In-process: isolation and retry determinism
// ---------------------------------------------------------------------------

#[test]
fn panicking_fixture_is_isolated_and_rest_of_selection_completes() {
    let _g = gate();
    let params = base_params(&["Basic_DAXPY", "Fixture_PANIC"]);
    let report = run_suite(&params);

    // The panic was contained: the healthy kernel still produced a timing
    // entry, the crashed one produced an outcome but no entry.
    assert_eq!(report.entries.len(), 1);
    assert_eq!(report.entries[0].kernel, "Basic_DAXPY");
    assert_eq!(report.outcomes.len(), 2);
    assert!(report.outcome("Basic_DAXPY").unwrap().is_pass());
    match report.outcome("Fixture_PANIC").unwrap() {
        KernelOutcome::Failed { message, retries } => {
            assert!(
                message.contains("Fixture_PANIC crashed deliberately"),
                "unexpected failure message: {message}"
            );
            // A genuine (non-simfault) panic must never be retried.
            assert_eq!(*retries, 0);
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    assert!(!report.all_passed());
    assert_eq!(report.failed_count(), 1);
}

#[test]
fn flaky_fixture_retries_until_success_deterministically() {
    let _g = gate();
    let mut params = base_params(&["Fixture_FLAKY"]);
    params.faults = Some("fixture.flaky=err:0.6,seed=5".to_string());
    params.max_retries = 16;
    params.retry_backoff = Duration::from_millis(1);

    let run = || {
        let report = run_suite(&params);
        match report.outcome("Fixture_FLAKY").unwrap() {
            KernelOutcome::Passed { retries } => (*retries, report.entries.len()),
            other => panic!("expected eventual pass, got {other:?}"),
        }
    };
    let (retries_a, entries_a) = run();
    let (retries_b, entries_b) = run();

    // install_spec resets the draw counters, so the same seeded spec replays
    // the identical failure/success sequence on every run.
    assert_eq!(retries_a, retries_b, "retry count must be deterministic");
    assert_eq!((entries_a, entries_b), (1, 1));
    assert!(retries_a > 0, "rate 0.6 at seed 5 should fail at least once");
}

#[test]
fn retry_budget_exhaustion_reports_transient_failure() {
    let _g = gate();
    let mut params = base_params(&["Fixture_FLAKY"]);
    // Rate 1.0: every attempt fails; the budget must run out.
    params.faults = Some("fixture.flaky=err:1.0,seed=1".to_string());
    params.max_retries = 2;
    params.retry_backoff = Duration::from_millis(1);
    let report = run_suite(&params);
    match report.outcome("Fixture_FLAKY").unwrap() {
        KernelOutcome::Failed { message, retries } => {
            assert_eq!(*retries, 2);
            assert!(message.starts_with("simfault:"), "{message}");
        }
        other => panic!("expected Failed after budget exhaustion, got {other:?}"),
    }
    assert!(report.entries.is_empty());
}

// ---------------------------------------------------------------------------
// End-to-end: the rajaperf binary
// ---------------------------------------------------------------------------

fn rajaperf() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rajaperf"))
}

fn outcome_section(stdout: &str) -> &str {
    let start = stdout
        .find("Kernel outcomes")
        .expect("stdout should contain an outcome section");
    &stdout[start..]
}

#[test]
fn e2e_injected_panic_fails_one_kernel_and_exits_partial_failure() {
    let out = rajaperf()
        .args([
            "--kernels",
            "Stream_TRIAD,Basic_DAXPY",
            "--variant",
            "Base_SimGpu",
            "--size",
            "1000",
            "--reps",
            "2",
            "--faults",
            "gpusim.launch@Stream_TRIAD=panic:1.0,seed=1",
        ])
        .output()
        .expect("spawn rajaperf");
    assert_eq!(out.status.code(), Some(5), "kernel failures must exit 5");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let section = outcome_section(&stdout);
    assert!(section.contains("Stream_TRIAD"));
    assert!(section.contains("FAILED"));
    assert!(section.contains("1 failed"), "section: {section}");
    // The healthy kernel still ran to completion.
    assert!(section.contains("1 passed"), "section: {section}");
}

#[test]
fn e2e_same_seed_reproduces_identical_outcome_set() {
    let run = || {
        let out = rajaperf()
            .args([
                "--groups",
                "Stream",
                "--variant",
                "Base_SimGpu",
                "--size",
                "1000",
                "--reps",
                "2",
                "--faults",
                "gpusim.launch=panic:0.1,seed=7",
            ])
            .output()
            .expect("spawn rajaperf");
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let (a, b) = (run(), run());
    assert_eq!(
        outcome_section(&a),
        outcome_section(&b),
        "same seed must reproduce the identical outcome set"
    );
}

#[test]
fn e2e_simfault_env_is_picked_up_and_validated() {
    let out = rajaperf()
        .args([
            "--kernels",
            "Basic_DAXPY",
            "--variant",
            "Base_SimGpu",
            "--size",
            "1000",
            "--reps",
            "2",
        ])
        .env("SIMFAULT", "gpusim.launch=panic:1.0,seed=1")
        .output()
        .expect("spawn rajaperf");
    assert_eq!(out.status.code(), Some(5));

    let bad = rajaperf()
        .args(["--kernels", "Basic_DAXPY"])
        .env("SIMFAULT", "no.such.point=panic")
        .output()
        .expect("spawn rajaperf");
    assert_eq!(bad.status.code(), Some(2), "unknown failpoint is a usage error");
}

#[test]
fn e2e_usage_error_exits_2() {
    let out = rajaperf().args(["--no-such-flag"]).output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
}

// ---------------------------------------------------------------------------
// End-to-end: crash-safe sweep resume
// ---------------------------------------------------------------------------

fn sweep_args() -> Vec<&'static str> {
    vec![
        "--sweep",
        "--sweep-dir",
        "sweep",
        "--kernels",
        "Basic_DAXPY",
        "--size",
        "1000",
        "--reps",
        "2",
        // Slow every kernel execution down deterministically so the kill
        // reliably lands mid-sweep; stalls never fail anything.
        "--faults",
        "suite.kernel=stall(80),seed=1",
    ]
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rajaperf-fault-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn e2e_killed_sweep_resumes_to_identical_manifest() {
    let interrupted = temp_dir("kill");
    let fresh = temp_dir("fresh");

    // Start a sweep and kill -9 it mid-run.
    let mut child = rajaperf()
        .args(sweep_args())
        .current_dir(&interrupted)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn sweep");
    std::thread::sleep(Duration::from_millis(200));
    child.kill().expect("kill -9 the sweep");
    let _ = child.wait();

    // Resume: must complete, reusing whatever intact cells survived.
    let resumed = rajaperf()
        .args(sweep_args())
        .current_dir(&interrupted)
        .output()
        .expect("resume sweep");
    assert!(resumed.status.success(), "resumed sweep must succeed");

    // Reference: the same sweep, uninterrupted, from a sibling directory.
    // Relative --sweep-dir keeps every path in the manifest relative, so the
    // two manifests are byte-comparable.
    let reference = rajaperf()
        .args(sweep_args())
        .current_dir(&fresh)
        .output()
        .expect("uninterrupted sweep");
    assert!(reference.status.success());

    let a = std::fs::read(interrupted.join("sweep/manifest.json")).unwrap();
    let b = std::fs::read(fresh.join("sweep/manifest.json")).unwrap();
    assert_eq!(
        String::from_utf8_lossy(&a),
        String::from_utf8_lossy(&b),
        "resumed manifest must be byte-identical to an uninterrupted run"
    );

    // No torn temp files may survive anywhere in the sweep tree.
    assert!(!tree_has_tmp(&interrupted.join("sweep")));

    let _ = std::fs::remove_dir_all(&interrupted);
    let _ = std::fs::remove_dir_all(&fresh);
}

fn tree_has_tmp(dir: &Path) -> bool {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return false;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            if tree_has_tmp(&p) {
                return true;
            }
        } else if p.file_name().is_some_and(|n| n.to_string_lossy().contains(".tmp.")) {
            return true;
        }
    }
    false
}

#[test]
fn e2e_corrupt_sweep_cell_is_quarantined_and_rerun() {
    let dir = temp_dir("quarantine");
    let args: Vec<&str> = vec![
        "--sweep",
        "--sweep-dir",
        "sweep",
        "--kernels",
        "Basic_DAXPY",
        "--size",
        "1000",
        "--reps",
        "2",
    ];

    let first = rajaperf().args(&args).current_dir(&dir).output().unwrap();
    assert!(first.status.success());
    let manifest_before = std::fs::read_to_string(dir.join("sweep/manifest.json")).unwrap();

    // Tear one cell record and one *other* cell's profile, as a mid-write
    // kill of a non-atomic writer would have.
    let cells = dir.join("sweep/cells");
    let torn_cell = cells.join("Base_Seq.block_256.json");
    let full = std::fs::read_to_string(&torn_cell).unwrap();
    std::fs::write(&torn_cell, &full[..full.len() / 3]).unwrap();
    let torn_profile = dir.join("sweep/profiles/Base_Par.block_256.cali.json");
    let full_profile = std::fs::read_to_string(&torn_profile).unwrap();
    std::fs::write(&torn_profile, &full_profile[..full_profile.len() / 2]).unwrap();

    let second = rajaperf().args(&args).current_dir(&dir).output().unwrap();
    assert!(second.status.success());
    let stdout = String::from_utf8_lossy(&second.stdout);
    assert!(
        stdout.contains("quarantined"),
        "summary must report quarantined files: {stdout}"
    );

    // Corrupt files were moved aside (cell record + profile + the record
    // that vouched for the torn profile), the cells re-ran, and the
    // manifest is whole again.
    let quarantine = dir.join("sweep/quarantine");
    let quarantined: Vec<_> = std::fs::read_dir(&quarantine)
        .expect("quarantine directory must exist")
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert!(quarantined.iter().any(|n| n == "Base_Seq.block_256.json"));
    assert!(quarantined.iter().any(|n| n == "Base_Par.block_256.cali.json"));
    let manifest_after = std::fs::read_to_string(dir.join("sweep/manifest.json")).unwrap();
    assert_eq!(manifest_before, manifest_after);
    // The re-run cells rewrote intact files.
    let reparsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&torn_cell).unwrap()).unwrap();
    assert!(reparsed.get("key").is_some());

    let _ = std::fs::remove_dir_all(&dir);
}
