//! End-to-end event-trace properties over the real suite:
//!
//! * across the **full 76-kernel registry** at a tiny size, the exported
//!   Chrome trace holds the begin/end discipline — every `B` has a matching
//!   `E` on the same lane with `ts_end >= ts_begin`, and every kernel that
//!   ran has exactly one complete region event;
//! * under a real multi-thread pool, a simulated-GPU run produces
//!   per-worker lanes with device block events.
//!
//! This binary pins `RAYON_NUM_THREADS=4` before first pool use (the pool
//! is process-global and sized once). The trace collector is also
//! process-global, so the tests serialize on one lock.

use std::collections::BTreeMap;
use simsched::sync::Mutex;
use suite::{run_suite, RunParams, Selection};

static LOCK: Mutex<()> = Mutex::new(());

fn pin_pool() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        std::env::set_var("RAYON_NUM_THREADS", "4");
        assert_eq!(rayon::current_num_threads(), 4);
    });
}

/// One parsed trace event: (name, phase, tid, ts).
type Ev = (String, String, i64, f64);

fn parse_events(json: &str) -> Vec<Ev> {
    let doc: serde_json::Value = serde_json::from_str(json).expect("trace JSON parses");
    doc.get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array")
        .iter()
        .filter(|e| e.get("ph").and_then(|v| v.as_str()) != Some("M"))
        .map(|e| {
            (
                e.get("name").and_then(|v| v.as_str()).expect("name").to_string(),
                e.get("ph").and_then(|v| v.as_str()).expect("ph").to_string(),
                e.get("tid").and_then(|v| v.as_i64()).expect("tid"),
                e.get("ts").and_then(|v| v.as_f64()).expect("ts"),
            )
        })
        .collect()
}

/// Replay every lane's stack; panic on any pairing violation. Returns the
/// number of completed begin/end pairs per region name.
fn check_pairing(events: &[Ev]) -> BTreeMap<String, usize> {
    let mut stacks: BTreeMap<i64, Vec<(&str, f64)>> = BTreeMap::new();
    let mut pairs: BTreeMap<String, usize> = BTreeMap::new();
    for (name, ph, tid, ts) in events {
        match ph.as_str() {
            "B" => stacks.entry(*tid).or_default().push((name, *ts)),
            "E" => {
                let (open, ts0) = stacks
                    .entry(*tid)
                    .or_default()
                    .pop()
                    .unwrap_or_else(|| panic!("lane {tid}: end '{name}' without begin"));
                assert_eq!(open, name, "lane {tid}: mismatched nesting");
                assert!(*ts >= ts0, "region '{name}' ends ({ts}) before it begins ({ts0})");
                *pairs.entry(name.clone()).or_default() += 1;
            }
            _ => {}
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "lane {tid}: unclosed regions {stack:?}");
    }
    pairs
}

#[test]
fn full_registry_trace_pairs_every_begin_with_a_later_end() {
    pin_pool();
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let path = std::env::temp_dir().join(format!("rajaperf_trace_all_{}.json", std::process::id()));
    let p = RunParams {
        selection: Selection::All,
        explicit_size: Some(1000),
        explicit_reps: Some(1),
        trace: Some(path.clone()),
        ..RunParams::default()
    };
    let report = run_suite(&p);
    assert!(report.outputs.contains(&path), "trace listed in outputs");
    let json = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let events = parse_events(&json);
    let pairs = check_pairing(&events);
    // Every kernel that ran has exactly one complete region event.
    assert_eq!(report.entries.len(), 76, "Base_Seq covers the registry");
    for e in &report.entries {
        assert_eq!(
            pairs.get(e.kernel.as_str()).copied(),
            Some(1),
            "kernel '{}' must have one complete begin/end pair",
            e.kernel
        );
    }
    assert_eq!(pairs.get("RAJAPerf").copied(), Some(1), "suite root region");
}

#[test]
fn trace_service_in_caliper_spec_enables_collection() {
    pin_pool();
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let path = std::env::temp_dir().join(format!("rajaperf_trace_svc_{}.json", std::process::id()));
    // The trace service alone (no --trace flag) must switch event
    // collection on — it can only export events that were recorded.
    let p = RunParams {
        selection: Selection::Kernels(vec!["Stream_TRIAD".into()]),
        explicit_size: Some(1000),
        explicit_reps: Some(1),
        caliper_spec: Some(format!("trace(output={})", path.display())),
        ..RunParams::default()
    };
    let report = run_suite(&p);
    assert!(report.outputs.contains(&path), "trace listed in outputs");
    let json = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let events = parse_events(&json);
    let pairs = check_pairing(&events);
    assert_eq!(pairs.get("Stream_TRIAD").copied(), Some(1));
}

#[test]
fn simgpu_trace_has_worker_lanes_and_device_events() {
    pin_pool();
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let path = std::env::temp_dir().join(format!("rajaperf_trace_gpu_{}.json", std::process::id()));
    let folded =
        std::env::temp_dir().join(format!("rajaperf_trace_gpu_{}.folded", std::process::id()));
    // Workers only show up in the trace if they win blocks from the caller;
    // with a 4-wide pool and hundreds of blocks per launch this is near
    // certain, but retry a few times rather than flake.
    let mut worker_lane_seen = false;
    for _attempt in 0..5 {
        let p = RunParams {
            selection: Selection::Kernels(vec!["Stream_TRIAD".into()]),
            variant: kernels::VariantId::BaseSimGpu,
            explicit_size: Some(200_000),
            explicit_reps: Some(2),
            trace: Some(path.clone()),
            trace_folded: Some(folded.clone()),
            ..RunParams::default()
        };
        let report = run_suite(&p);
        assert_eq!(report.entries.len(), 1);
        let json = std::fs::read_to_string(&path).unwrap();
        let events = parse_events(&json);
        check_pairing(&events);
        // Device events made it into the trace.
        assert!(
            events.iter().any(|(n, ph, _, _)| n == "gpusim.launch" && ph == "i"),
            "launch instant events present"
        );
        assert!(
            events.iter().any(|(n, ph, _, _)| n == "gpusim.blocks" && ph == "C"),
            "device counter events present"
        );
        assert!(
            events.iter().any(|(n, _, _, _)| n == "gpusim.block"),
            "per-block span events present"
        );
        // Folded stacks exported alongside.
        let folded_text = std::fs::read_to_string(&folded).unwrap();
        assert!(folded_text.lines().count() >= 1);
        // Per-worker lanes: block events on a lane other than the caller's.
        let doc: serde_json::Value = serde_json::from_str(&json).unwrap();
        worker_lane_seen = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .unwrap()
            .iter()
            .any(|e| {
                e.get("ph").and_then(|v| v.as_str()) == Some("M")
                    && e.get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(|v| v.as_str())
                        .is_some_and(|n| n.starts_with("pool-worker-"))
            });
        if worker_lane_seen {
            break;
        }
    }
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&folded).ok();
    assert!(
        worker_lane_seen,
        "a 4-wide pool tracing hundreds of blocks never populated a worker lane"
    );
}
