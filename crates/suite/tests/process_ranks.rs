//! Process-isolated rank campaign tests (`--sweep --rank-isolation
//! process`): manifest byte-identity versus `--ranks 1`, kill -9 of a
//! child mid-campaign (supervised restart, same run), kill -9 of the
//! parent (orphan-free, byte-identical resume under the *other* isolation
//! mode), restart-budget exhaustion (graceful degradation + casualty
//! report), gate-free seeded-fault determinism, and the exit-status
//! taxonomy (child usage error → parent exit 2).
//!
//! Sweep-running tests drive the built `rajaperf` binary with a relative
//! `--sweep-dir` (manifests from different directories stay
//! byte-comparable); children inherit the parent's working directory, so
//! supervisor and workers agree on every relative path.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

fn rajaperf() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rajaperf"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rajaperf-proc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A 12-cell grid: every variant × two block-size tunings, one kernel.
fn grid_args(extra: &[&str]) -> Vec<String> {
    let mut args: Vec<String> = [
        "--sweep",
        "--sweep-dir",
        "sweep",
        "--sweep-block-sizes",
        "128,256",
        "--kernels",
        "Basic_DAXPY",
        "--size",
        "1000",
        "--reps",
        "2",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    args.extend(extra.iter().map(|s| s.to_string()));
    args
}

fn run_sweep_in(dir: &Path, args: &[String]) -> std::process::Output {
    rajaperf()
        .args(args)
        .current_dir(dir)
        .output()
        .expect("run rajaperf sweep")
}

fn manifest_bytes(dir: &Path) -> String {
    String::from_utf8_lossy(&std::fs::read(dir.join("sweep/manifest.json")).unwrap()).into_owned()
}

/// Live `--rank-worker` processes, optionally restricted to children of
/// `parent` (pass `None` after the parent is dead — orphans reparent).
/// `marker` narrows to this test's own campaign (tests run concurrently).
fn worker_pids(parent: Option<u32>, marker: &str) -> Vec<u32> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir("/proc") else {
        return out;
    };
    for e in entries.flatten() {
        let Some(pid) = e.file_name().to_str().and_then(|s| s.parse::<u32>().ok()) else {
            continue;
        };
        let Ok(cmdline) = std::fs::read(format!("/proc/{pid}/cmdline")) else {
            continue;
        };
        let cmd = String::from_utf8_lossy(&cmdline).replace('\0', " ");
        if !cmd.contains("--rank-worker") || !cmd.contains(marker) {
            continue;
        }
        if let Some(ppid_want) = parent {
            // /proc/<pid>/stat: pid (comm) state ppid ... — comm is
            // parenthesized and may hold spaces, so split after the ')'.
            let Ok(stat) = std::fs::read_to_string(format!("/proc/{pid}/stat")) else {
                continue;
            };
            let after = stat.rsplit_once(')').map(|(_, r)| r).unwrap_or("");
            let ppid: Option<u32> = after.split_whitespace().nth(1).and_then(|s| s.parse().ok());
            if ppid != Some(ppid_want) {
                continue;
            }
        }
        out.push(pid);
    }
    out
}

fn kill9(pid: u32) {
    let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
}

/// Poll until `f` returns `Some`, up to `limit`.
fn wait_for<T>(limit: Duration, mut f: impl FnMut() -> Option<T>) -> Option<T> {
    let start = Instant::now();
    loop {
        if let Some(v) = f() {
            return Some(v);
        }
        if start.elapsed() > limit {
            return None;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn e2e_process_ranked_sweep_manifest_is_byte_identical_to_single_rank() {
    let single = temp_dir("p1");
    let ranked = temp_dir("p4");

    let a = run_sweep_in(&single, &grid_args(&["--ranks", "1"]));
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stderr));
    let b = run_sweep_in(
        &ranked,
        &grid_args(&["--rank-isolation", "process", "--ranks", "4"]),
    );
    assert!(b.status.success(), "{}", String::from_utf8_lossy(&b.stderr));

    assert_eq!(
        manifest_bytes(&single),
        manifest_bytes(&ranked),
        "process-isolated campaign must produce the exact --ranks 1 manifest"
    );
    let profiles = std::fs::read_dir(ranked.join("sweep/profiles")).unwrap().count();
    assert_eq!(profiles, 12);

    let _ = std::fs::remove_dir_all(&single);
    let _ = std::fs::remove_dir_all(&ranked);
}

#[test]
fn e2e_kill9_of_a_child_rank_is_survived_within_the_same_campaign() {
    let dir = temp_dir("childkill");
    let fresh = temp_dir("childkill-ref");
    // Deterministic stalls widen the kill window without failing anything;
    // faults being armed also proves fault-armed process campaigns run
    // rank-parallel (no FAULT_CELL_GATE) and still complete.
    let faulty = |extra: &[&str]| {
        let mut a = grid_args(&["--faults", "suite.kernel=stall(120),seed=1"]);
        a.extend(extra.iter().map(|s| s.to_string()));
        a
    };

    let parent = rajaperf()
        .args(faulty(&["--rank-isolation", "process", "--ranks", "4"]))
        .current_dir(&dir)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn process campaign");
    // The relative --sweep-dir keeps the temp dir out of the children's
    // cmdlines, so the parent pid is the campaign discriminator.
    let ppid = parent.id();
    let victim = wait_for(Duration::from_secs(30), || {
        worker_pids(Some(ppid), "--rank-worker").first().copied()
    })
    .expect("a child rank worker should appear");
    kill9(victim);

    let out = parent.wait_with_output().expect("campaign completes");
    assert!(
        out.status.success(),
        "a signal-killed child must be retried, not abort the campaign: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("respawn"),
        "the supervisor should report the respawn:\n{stdout}"
    );
    assert!(
        stdout.contains("SIGKILL"),
        "the decoded exit status should name the signal:\n{stdout}"
    );

    // Reference: the same campaign, undisturbed, single-rank threads.
    let reference = run_sweep_in(&fresh, &faulty(&["--ranks", "1"]));
    assert!(reference.status.success());
    assert_eq!(
        manifest_bytes(&dir),
        manifest_bytes(&fresh),
        "kill -9 of a child mid-campaign must not perturb the manifest"
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&fresh);
}

#[test]
fn e2e_kill9_of_the_parent_leaves_no_orphans_and_resumes_byte_identically() {
    let dir = temp_dir("parentkill");
    let fresh = temp_dir("parentkill-ref");
    let faulty = |extra: &[&str]| {
        let mut a = grid_args(&["--faults", "suite.kernel=stall(120),seed=1"]);
        a.extend(extra.iter().map(|s| s.to_string()));
        a
    };

    let mut parent = rajaperf()
        .args(faulty(&["--rank-isolation", "process", "--ranks", "4"]))
        .current_dir(&dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn process campaign");
    let ppid = parent.id();
    wait_for(Duration::from_secs(30), || {
        let n = worker_pids(Some(ppid), "--rank-worker").len();
        (n >= 2).then_some(())
    })
    .expect("child rank workers should appear");
    kill9(ppid);
    let _ = parent.wait();

    // Orphan contract: with their supervisor gone, workers see stdin EOF
    // (or EPIPE from the heartbeat) and exit on their own — no leaked
    // children. The stall keeps one mid-cell, so allow it to finish.
    let none_left = wait_for(Duration::from_secs(30), || {
        worker_pids(None, "--rank-worker").is_empty().then_some(())
    });
    assert!(
        none_left.is_some(),
        "workers must exit after their supervisor is killed: {:?}",
        worker_pids(None, "--rank-worker")
    );

    // Resume under the *other* isolation mode: intact cells reused, the
    // rest re-run, manifest byte-identical — isolation is not in the key.
    let resumed = run_sweep_in(&dir, &faulty(&["--ranks", "2"]));
    assert!(
        resumed.status.success(),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let reference = run_sweep_in(&fresh, &faulty(&["--ranks", "1"]));
    assert!(reference.status.success());
    assert_eq!(
        manifest_bytes(&dir),
        manifest_bytes(&fresh),
        "parent kill + thread-mode resume must reproduce the single-rank manifest"
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&fresh);
}

#[test]
fn e2e_restart_budget_exhaustion_redistributes_and_reports_casualty() {
    let dir = temp_dir("budget");
    let fresh = temp_dir("budget-ref");

    // Rank 2 aborts at boot, every incarnation: initial boot + 1 respawn
    // exhausts --rank-restarts 1, so it retires and its shard is stolen by
    // the survivors. The campaign must still complete cleanly.
    let out = rajaperf()
        .args(grid_args(&[
            "--rank-isolation",
            "process",
            "--ranks",
            "3",
            "--rank-restarts",
            "1",
        ]))
        .env("RAJAPERF_TEST_WORKER_ABORT_RANK", "2")
        .current_dir(&dir)
        .output()
        .expect("run degraded campaign");
    assert!(
        out.status.success(),
        "budget exhaustion must degrade, not fail: {}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("Casualties (cells redistributed to surviving ranks):"),
        "casualty report missing:\n{stdout}"
    );
    assert!(
        stdout.contains("rank 2: retired after 1 restart(s)"),
        "casualty attribution missing:\n{stdout}"
    );
    assert!(
        stdout.contains("SIGABRT"),
        "the decoded abort should be named:\n{stdout}"
    );

    let reference = run_sweep_in(&fresh, &grid_args(&["--ranks", "1"]));
    assert!(reference.status.success());
    assert_eq!(
        manifest_bytes(&dir),
        manifest_bytes(&fresh),
        "a degraded campaign's manifest must still match the single-rank run"
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&fresh);
}

#[test]
fn e2e_seeded_fault_failures_replay_identically_without_the_cell_gate() {
    // Kernel-failing seeded faults, executed rank-parallel in separate
    // processes (no FAULT_CELL_GATE serialization): the failures are cell
    // facts and must land in the manifest exactly as in a serial run.
    let single = temp_dir("pf1");
    let ranked = temp_dir("pf4");
    let faulty = |extra: &[&str]| {
        let mut a = grid_args(&["--faults", "suite.kernel=panic:0.5,seed=7"]);
        a.extend(extra.iter().map(|s| s.to_string()));
        a
    };

    let a = run_sweep_in(&single, &faulty(&["--ranks", "1"]));
    let b = run_sweep_in(
        &ranked,
        &faulty(&["--rank-isolation", "process", "--ranks", "4"]),
    );
    assert_eq!(
        a.status.code(),
        b.status.code(),
        "both runs must agree on the exit code\nstderr: {}",
        String::from_utf8_lossy(&b.stderr)
    );

    let single_manifest = manifest_bytes(&single);
    assert_eq!(
        single_manifest,
        manifest_bytes(&ranked),
        "gate-free process-parallel fault replay must match the serial manifest"
    );
    assert!(
        single_manifest.contains("failed_kernels"),
        "spec should have failed at least one kernel to make the comparison meaningful"
    );

    let _ = std::fs::remove_dir_all(&single);
    let _ = std::fs::remove_dir_all(&ranked);
}

#[test]
fn e2e_child_usage_exit_decodes_to_parent_usage_exit() {
    use std::os::unix::fs::PermissionsExt;
    let dir = temp_dir("usage");
    // A stand-in worker that rejects any command line: the supervisor must
    // decode its exit 2 as a parameter disagreement and abort with the
    // suite's usage exit — restarting could never fix it.
    let fake = dir.join("fake-rajaperf");
    std::fs::write(&fake, "#!/bin/sh\necho 'error: unknown flag' >&2\nexit 2\n").unwrap();
    std::fs::set_permissions(&fake, std::fs::Permissions::from_mode(0o755)).unwrap();

    let out = rajaperf()
        .args(grid_args(&["--rank-isolation", "process", "--ranks", "2"]))
        .env("RAJAPERF_WORKER_BIN", &fake)
        .current_dir(&dir)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "child usage exit must become parent usage exit, not internal (1):\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("rejected its command line"),
        "stderr: {stderr}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn e2e_rank_isolation_flag_validation_exits_2() {
    // Unknown mode.
    let out = rajaperf()
        .args(grid_args(&["--rank-isolation", "containers"]))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown rank isolation mode"), "{stderr}");

    // Process isolation outside a sweep.
    let out = rajaperf()
        .args([
            "--rank-isolation",
            "process",
            "--kernels",
            "Basic_DAXPY",
            "--size",
            "1000",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--sweep"), "{stderr}");

    // A restart budget without process isolation budgets nothing.
    let out = rajaperf()
        .args(grid_args(&["--rank-restarts", "3"]))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--rank-isolation process"), "{stderr}");
}

#[test]
fn process_sweep_reports_stats_restarts_and_rank_attribution() {
    use suite::params::RankIsolation;
    use suite::{run_sweep, RunParams, Selection};
    let dir = temp_dir("inproc");
    let params = RunParams {
        selection: Selection::Kernels(vec!["Basic_DAXPY".to_string()]),
        explicit_size: Some(1000),
        explicit_reps: Some(1),
        sweep: true,
        sweep_dir: Some(dir.join("sweep")),
        ranks: 2,
        rank_isolation: RankIsolation::Process,
        ..RunParams::default()
    };
    let summary = run_sweep(&params).expect("process-ranked sweep succeeds");

    assert_eq!(summary.rank_stats.len(), 2);
    // Pipe traffic is counted from the child's perspective, like thread
    // mode counts the gather: every rank at least announced itself ready
    // and received at least one frame (an assignment or the shutdown).
    for s in &summary.rank_stats {
        assert!(s.messages_sent >= 1, "{s:?}");
        assert!(s.messages_received >= 1, "{s:?}");
        assert!(s.bytes_sent > 0, "{s:?}");
    }
    assert_eq!(summary.rank_restarts, vec![0, 0]);
    assert!(summary.casualties.is_empty());
    assert!(summary.cells.iter().all(|c| c.cached
        || matches!(c.executed_by, Some(r) if r < 2)));
    assert!(summary.cells.iter().any(|c| !c.cached));

    // A fully cached re-run spawns no children at all.
    let before = std::fs::read(summary.manifest.clone()).unwrap();
    let again = run_sweep(&params).expect("cached sweep succeeds");
    assert!(again.cells.iter().all(|c| c.cached));
    assert!(again.rank_stats.is_empty());
    assert!(again.rank_restarts.is_empty());
    let after = std::fs::read(&again.manifest).unwrap();
    assert_eq!(before, after);

    let _ = std::fs::remove_dir_all(&dir);
}
