//! Rank-sharded campaign tests (`--sweep --ranks N`): manifest
//! byte-identity across rank counts, kill-9 resume, seeded-fault
//! determinism independent of rank assignment, and CLI validation.
//!
//! All sweep-running tests drive the built `rajaperf` binary in child
//! processes with a *relative* `--sweep-dir`, so manifests from different
//! directories are byte-comparable. The one in-process test runs no fault
//! injection and needs no simfault gate.

use std::path::Path;
use std::process::Command;
use std::time::Duration;

fn rajaperf() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rajaperf"))
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rajaperf-rank-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A 12-cell grid: every variant × two block-size tunings, one kernel.
fn grid_args(extra: &[&str]) -> Vec<String> {
    let mut args: Vec<String> = [
        "--sweep",
        "--sweep-dir",
        "sweep",
        "--sweep-block-sizes",
        "128,256",
        "--kernels",
        "Basic_DAXPY",
        "--size",
        "1000",
        "--reps",
        "2",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    args.extend(extra.iter().map(|s| s.to_string()));
    args
}

fn run_sweep_in(dir: &Path, args: &[String]) -> std::process::Output {
    rajaperf()
        .args(args)
        .current_dir(dir)
        .output()
        .expect("run rajaperf sweep")
}

fn manifest_bytes(dir: &Path) -> String {
    String::from_utf8_lossy(&std::fs::read(dir.join("sweep/manifest.json")).unwrap()).into_owned()
}

fn tree_has_tmp(dir: &Path) -> bool {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return false;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            if tree_has_tmp(&p) {
                return true;
            }
        } else if p.file_name().is_some_and(|n| n.to_string_lossy().contains(".tmp.")) {
            return true;
        }
    }
    false
}

#[test]
fn e2e_ranked_sweep_manifest_is_byte_identical_to_single_rank() {
    let single = temp_dir("r1");
    let ranked = temp_dir("r4");

    let a = run_sweep_in(&single, &grid_args(&["--ranks", "1"]));
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stderr));
    let b = run_sweep_in(&ranked, &grid_args(&["--ranks", "4"]));
    assert!(b.status.success(), "{}", String::from_utf8_lossy(&b.stderr));

    assert_eq!(
        manifest_bytes(&single),
        manifest_bytes(&ranked),
        "--ranks 4 must gather into the exact --ranks 1 manifest"
    );
    // Sharding must not change how many cells the grid has: 6 variants × 2
    // block sizes, every one with its own profile on disk.
    let profiles = std::fs::read_dir(ranked.join("sweep/profiles")).unwrap().count();
    assert_eq!(profiles, 12);

    let _ = std::fs::remove_dir_all(&single);
    let _ = std::fs::remove_dir_all(&ranked);
}

#[test]
fn e2e_killed_ranked_sweep_resumes_to_identical_manifest() {
    let interrupted = temp_dir("kill");
    let fresh = temp_dir("fresh");
    // Stall every kernel execution deterministically so the kill lands
    // mid-sweep; stalls never fail anything, so the manifest is clean.
    let faulty = |ranks: &str| {
        grid_args(&["--faults", "suite.kernel=stall(80),seed=1", "--ranks", ranks])
    };

    let mut child = rajaperf()
        .args(faulty("4"))
        .current_dir(&interrupted)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn ranked sweep");
    std::thread::sleep(Duration::from_millis(300));
    child.kill().expect("kill -9 the ranked sweep");
    let _ = child.wait();

    // Resume at the same rank count: intact cells are reused, the
    // casualties re-run.
    let resumed = run_sweep_in(&interrupted, &faulty("4"));
    assert!(
        resumed.status.success(),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );

    // Reference: the same campaign, uninterrupted, at --ranks 1.
    let reference = run_sweep_in(&fresh, &faulty("1"));
    assert!(reference.status.success());

    assert_eq!(
        manifest_bytes(&interrupted),
        manifest_bytes(&fresh),
        "kill-9 + ranked resume must reproduce the single-rank manifest byte for byte"
    );
    assert!(!tree_has_tmp(&interrupted.join("sweep")));

    let _ = std::fs::remove_dir_all(&interrupted);
    let _ = std::fs::remove_dir_all(&fresh);
}

#[test]
fn e2e_seeded_faults_replay_identically_at_any_rank_count() {
    // A seeded spec that *fails* kernels: the failures land in the manifest
    // (failed_kernels are cell facts), so byte-identity across rank counts
    // proves fault replay does not depend on rank assignment.
    let single = temp_dir("f1");
    let ranked = temp_dir("f4");
    let faulty = |ranks: &str| {
        grid_args(&["--faults", "suite.kernel=panic:0.5,seed=7", "--ranks", ranks])
    };

    let a = run_sweep_in(&single, &faulty("1"));
    let b = run_sweep_in(&ranked, &faulty("4"));
    // Injected kernel failures exit with the partial-failure code; both
    // runs must agree on it too.
    assert_eq!(a.status.code(), b.status.code());

    let single_manifest = manifest_bytes(&single);
    assert_eq!(
        single_manifest,
        manifest_bytes(&ranked),
        "seeded faults must replay identically regardless of executing rank"
    );
    assert!(
        single_manifest.contains("failed_kernels"),
        "spec should have failed at least one kernel to make the comparison meaningful"
    );

    let _ = std::fs::remove_dir_all(&single);
    let _ = std::fs::remove_dir_all(&ranked);
}

#[test]
fn e2e_ranks_without_sweep_is_a_usage_error() {
    let out = rajaperf()
        .args(["--ranks", "4", "--kernels", "Basic_DAXPY", "--size", "1000"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "usage exit");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--sweep"), "stderr: {stderr}");
}

#[test]
fn ranked_sweep_reports_rank_stats_and_executing_ranks() {
    use suite::{sweep::run_sweep, RunParams, Selection};
    let dir = temp_dir("inproc");
    let params = RunParams {
        selection: Selection::Kernels(vec!["Basic_DAXPY".to_string()]),
        explicit_size: Some(1000),
        explicit_reps: Some(1),
        sweep: true,
        sweep_dir: Some(dir.join("sweep")),
        ranks: 2,
        ..RunParams::default()
    };
    let summary = run_sweep(&params).expect("ranked sweep succeeds");

    assert_eq!(summary.rank_stats.len(), 2);
    // The gather is real traffic: rank 1 sends its report, rank 0 receives.
    assert!(summary.rank_stats[1].messages_sent >= 1);
    assert!(summary.rank_stats[0].messages_received >= 1);
    assert!(summary.rank_stats[0].bytes_received > 0);

    // Every executed (non-cached) cell is attributed to a real rank.
    assert!(summary.cells.iter().all(|c| c.cached
        || matches!(c.executed_by, Some(r) if r < 2)));
    assert!(summary.cells.iter().any(|c| !c.cached));

    // A re-run reuses every cell — no ranks spin up for a fully cached
    // sweep, and the manifest is unchanged.
    let before = std::fs::read(summary.manifest.clone()).unwrap();
    let again = run_sweep(&params).expect("cached sweep succeeds");
    assert!(again.cells.iter().all(|c| c.cached));
    assert!(again.rank_stats.is_empty());
    let after = std::fs::read(&again.manifest).unwrap();
    assert_eq!(before, after);

    let _ = std::fs::remove_dir_all(&dir);
}
