//! `simfault` — deterministic fault injection for the RAJAPerf-rs runner.
//!
//! Campaign-scale data collection (sweeps of 76 kernels × variants ×
//! tunings) must survive the failures real clusters produce: panicking
//! kernels, transient launch errors, stalls, bit-flips in device buffers,
//! and torn file writes from a mid-run kill. This crate provides seeded,
//! rate-configurable *failpoints* — named call sites where those faults can
//! be injected on demand — so the suite's fault-tolerance layer can be
//! exercised deterministically in tests and CI.
//!
//! # Contract
//!
//! * **Zero cost off.** While no fault config is installed — the production
//!   state — every producer-side call ([`armed`], [`fail_point`],
//!   [`corrupt_bytes`], [`truncated_len`]) costs exactly one relaxed atomic
//!   load; evaluation lives behind `#[cold]` calls. This is the same
//!   contract `gpusim::sanitizer` and `caliper::trace` honor.
//! * **Deterministic on.** Every decision is a pure function of the
//!   installed seed, the failpoint name, the (optional) scope filter, and a
//!   per-entry draw counter. Re-installing the same spec replays the exact
//!   same fault sequence, so a failing campaign can be reproduced bit for
//!   bit from its `--faults` string.
//!
//! # Spec grammar
//!
//! ```text
//! spec   := item (',' item)*
//! item   := 'seed=' u64
//!         | point ['@' scope] '=' mode [':' rate]
//! mode   := 'panic' | 'err' | 'stall' ['(' millis ')'] | 'flip' | 'truncate'
//! rate   := float in [0, 1]     (default 1.0)
//! ```
//!
//! Examples: `gpusim.launch=err:0.05,seed=42` injects an error on ~5% of
//! device launches; `gpusim.launch@Stream_TRIAD=panic:1.0` panics every
//! launch, but only while the runner's scope (the executing kernel) is
//! `Stream_TRIAD`; `io.write=truncate:0.2` tears one in five file writes.
//!
//! The failpoint *registry* — the call sites the suite actually instruments
//! — is [`KNOWN_POINTS`]. The spec parser accepts unknown names (tests use
//! private points), but the CLI rejects them so typos do not silently
//! inject nothing.
//!
//! # Scope of the armed state: one process, one fault world
//!
//! All armed state — the installed spec, the draw counters, the kernel
//! scope — is **process-global**. Within one process, that forces
//! serialization: the suite's thread-ranked sweeps gate fault-armed cells
//! one at a time (`FAULT_CELL_GATE`), and the daemon runs fault requests
//! under an exclusive [`acquire`] claim.
//!
//! Process-isolated rank campaigns (`--rank-isolation=process`) are the
//! other side of that coin: each child-rank `rajaperf` process carries its
//! *own* copy of this crate's globals, so N ranks are N independent fault
//! worlds needing no gate and no cross-rank claim. Determinism survives
//! the split because every cell re-installs the spec (resetting the draw
//! counters) at `run_suite` start — a cell's fault sequence is a function
//! of the spec alone, never of which process (or which restart of it)
//! executed the cell.
//!
//! **Ownership handoff:** a supervisor that spawns worker processes must
//! *not* [`acquire`] or [`install`] on the workers' behalf — the armed
//! state belongs to the child that executes kernels, and a parent-side
//! claim would only serialize campaigns that no longer share state. The
//! daemon follows this: process-mode fault sweeps skip both its exclusive
//! gate and its `simfault::acquire`, since only the spawned children arm
//! anything.

use simsched::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use simsched::sync::Mutex;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// The failpoint registry: every instrumented call site in the suite, with
/// the fault modes that are meaningful there. Points not listed here are
/// accepted by [`FaultConfig::parse`] but rejected by the CLI.
pub const KNOWN_POINTS: &[(&str, &str)] = &[
    (
        "gpusim.launch",
        "every simulated-device kernel launch (panic | err | stall)",
    ),
    (
        "gpusim.ecc",
        "device buffer registration; flip = one bit-flip in the buffer (flip)",
    ),
    (
        "suite.kernel",
        "suite runner, before each kernel-variant execution (panic | err | stall)",
    ),
    (
        "io.write",
        "crash-safe file writes; truncate = simulate a torn legacy write (truncate)",
    ),
    (
        "fixture.flaky",
        "kernels::faulty::Flaky positive-control kernel (panic | err | stall)",
    ),
];

/// True when `point` names a registered call site.
pub fn is_known_point(point: &str) -> bool {
    KNOWN_POINTS.iter().any(|(p, _)| *p == point)
}

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Unwind with an injected panic (`simfault: injected panic at ...`).
    Panic,
    /// Return an [`InjectedError`] from [`fail_point`].
    Err,
    /// Sleep for the given duration, then continue (artificial latency; a
    /// hung node from the watchdog's point of view).
    Stall(Duration),
    /// Flip one deterministically-chosen bit (data corruption; consumed via
    /// [`corrupt_bytes`]).
    Flip,
    /// Truncate a file write (torn write; consumed via [`truncated_len`]).
    Truncate,
}

impl FaultMode {
    /// Spec-grammar name of the mode.
    pub fn name(&self) -> &'static str {
        match self {
            FaultMode::Panic => "panic",
            FaultMode::Err => "err",
            FaultMode::Stall(_) => "stall",
            FaultMode::Flip => "flip",
            FaultMode::Truncate => "truncate",
        }
    }
}

/// Default stall duration when `stall` carries no `(millis)` argument.
pub const DEFAULT_STALL: Duration = Duration::from_millis(100);

/// One armed failpoint: where, what, how often, and (optionally) only under
/// which scope label.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEntry {
    /// Failpoint name this entry arms.
    pub point: String,
    /// Optional scope filter: the entry only fires while [`set_scope`] (the
    /// runner sets it to the executing kernel's name) matches.
    pub scope: Option<String>,
    /// Fault to inject.
    pub mode: FaultMode,
    /// Probability each evaluation fires, in `[0, 1]`.
    pub rate: f64,
}

impl FaultEntry {
    fn label(&self) -> String {
        match &self.scope {
            Some(s) => format!("{}@{}={}:{}", self.point, s, self.mode.name(), self.rate),
            None => format!("{}={}:{}", self.point, self.mode.name(), self.rate),
        }
    }
}

/// A parsed fault-injection configuration (see the module docs for the
/// spec grammar).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultConfig {
    /// Seed for every rate draw and corruption-position choice.
    pub seed: u64,
    /// Armed failpoints, in spec order (first matching entry wins).
    pub entries: Vec<FaultEntry>,
}

impl FaultConfig {
    /// Parse a `--faults` / `SIMFAULT` spec string.
    pub fn parse(spec: &str) -> Result<FaultConfig, String> {
        let mut cfg = FaultConfig::default();
        for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (lhs, rhs) = item
                .split_once('=')
                .ok_or_else(|| format!("fault spec item '{item}' is not key=value"))?;
            let (lhs, rhs) = (lhs.trim(), rhs.trim());
            if lhs == "seed" {
                cfg.seed = rhs
                    .parse()
                    .map_err(|e| format!("bad seed '{rhs}': {e}"))?;
                continue;
            }
            let (point, scope) = match lhs.split_once('@') {
                Some((p, s)) => (p.trim(), Some(s.trim().to_string())),
                None => (lhs, None),
            };
            if point.is_empty() {
                return Err(format!("fault spec item '{item}' has an empty point name"));
            }
            let (mode_str, rate_str) = match rhs.split_once(':') {
                Some((m, r)) => (m.trim(), Some(r.trim())),
                None => (rhs, None),
            };
            let mode = parse_mode(mode_str)
                .ok_or_else(|| format!("unknown fault mode '{mode_str}' in '{item}' (panic | err | stall[(ms)] | flip | truncate)"))?;
            let rate = match rate_str {
                None => 1.0,
                Some(r) => {
                    let r: f64 = r
                        .parse()
                        .map_err(|e| format!("bad rate in '{item}': {e}"))?;
                    if !(0.0..=1.0).contains(&r) {
                        return Err(format!("rate in '{item}' must be in [0, 1]"));
                    }
                    r
                }
            };
            cfg.entries.push(FaultEntry {
                point: point.to_string(),
                scope,
                mode,
                rate,
            });
        }
        if cfg.entries.is_empty() {
            return Err("fault spec arms no failpoint".to_string());
        }
        Ok(cfg)
    }

    /// Entries naming failpoints outside [`KNOWN_POINTS`] (CLI strictness;
    /// programmatic users may arm private points).
    pub fn unknown_points(&self) -> Vec<&str> {
        self.entries
            .iter()
            .map(|e| e.point.as_str())
            .filter(|p| !is_known_point(p))
            .collect()
    }
}

fn parse_mode(s: &str) -> Option<FaultMode> {
    match s {
        "panic" => Some(FaultMode::Panic),
        "err" => Some(FaultMode::Err),
        "flip" => Some(FaultMode::Flip),
        "truncate" => Some(FaultMode::Truncate),
        "stall" => Some(FaultMode::Stall(DEFAULT_STALL)),
        _ => {
            let ms = s
                .strip_prefix("stall(")?
                .strip_suffix(')')?
                .trim()
                .trim_end_matches("ms")
                .trim();
            Some(FaultMode::Stall(Duration::from_millis(ms.parse().ok()?)))
        }
    }
}

/// A fired fault: which point, what to do, and deterministic entropy for
/// data faults (bit positions, truncation lengths).
#[derive(Debug, Clone)]
pub struct Fault {
    /// Failpoint that fired.
    pub point: String,
    /// Injected fault mode.
    pub mode: FaultMode,
    /// Deterministic per-firing entropy for data-fault positioning.
    pub entropy: u64,
}

/// The error [`fail_point`] returns for `err`-mode injections. Kernels and
/// services that cannot return a `Result` surface it as a panic whose
/// message keeps the `simfault:` prefix — the runner's retry policy
/// classifies both shapes as *transient*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedError {
    /// Failpoint that produced the error.
    pub point: String,
}

impl std::fmt::Display for InjectedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected error at failpoint '{}'", self.point)
    }
}

impl std::error::Error for InjectedError {}

/// Observer invoked (from the `#[cold]` path) each time a fault fires —
/// the suite hooks this to emit `simfault.*` instants into the event trace.
pub type Observer = fn(point: &str, mode: &str);

struct ArmedState {
    config: FaultConfig,
    /// Per-entry draw counters (the deterministic sequence position).
    draws: Vec<AtomicU64>,
    /// Per-entry fired counters.
    fired: Vec<AtomicU64>,
}

static ARMED: AtomicBool = AtomicBool::new(false);

fn state_slot() -> &'static Mutex<Option<Arc<ArmedState>>> {
    static STATE: OnceLock<Mutex<Option<Arc<ArmedState>>>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(None))
}

fn scope_slot() -> &'static Mutex<String> {
    static SCOPE: OnceLock<Mutex<String>> = OnceLock::new();
    SCOPE.get_or_init(|| Mutex::new(String::new()))
}

fn observer_slot() -> &'static Mutex<Option<Observer>> {
    static OBSERVER: OnceLock<Mutex<Option<Observer>>> = OnceLock::new();
    OBSERVER.get_or_init(|| Mutex::new(None))
}

/// Whether a fault configuration is installed. One relaxed atomic load —
/// the *entire* cost of every failpoint while injection is off.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Install a fault configuration and arm every failpoint it names. Draw
/// and fired counters reset, so installing the same config replays the
/// identical fault sequence.
pub fn install(config: FaultConfig) {
    let n = config.entries.len();
    let state = ArmedState {
        config,
        draws: (0..n).map(|_| AtomicU64::new(0)).collect(),
        fired: (0..n).map(|_| AtomicU64::new(0)).collect(),
    };
    *state_slot().lock().unwrap() = Some(Arc::new(state));
    ARMED.store(true, Ordering::Relaxed);
}

/// Parse `spec` and [`install`] it.
pub fn install_spec(spec: &str) -> Result<(), String> {
    FaultConfig::parse(spec).map(install)
}

/// Disarm every failpoint and drop the configuration. Failpoints return to
/// the one-relaxed-load cost.
pub fn disarm() {
    ARMED.store(false, Ordering::Relaxed);
    *state_slot().lock().unwrap() = None;
}

/// Set (or clear, with `None`) the global scope label that `point@scope`
/// entries filter on. The suite runner sets it to the executing kernel's
/// name; the label is process-global because the runner executes kernels
/// one at a time (possibly on a watchdog thread).
pub fn set_scope(scope: Option<&str>) {
    let mut s = scope_slot().lock().unwrap();
    s.clear();
    if let Some(scope) = scope {
        s.push_str(scope);
    }
}

/// RAII guard for [`set_scope`]: restores the previous scope on drop.
pub struct ScopeGuard {
    previous: String,
}

/// Set the scope label for the guard's lifetime.
pub fn scoped(scope: &str) -> ScopeGuard {
    let mut s = scope_slot().lock().unwrap();
    let previous = std::mem::take(&mut *s);
    s.push_str(scope);
    ScopeGuard { previous }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        *scope_slot().lock().unwrap() = std::mem::take(&mut self.previous);
    }
}

/// Register (or clear) the fired-fault [`Observer`].
pub fn set_observer(observer: Option<Observer>) {
    *observer_slot().lock().unwrap() = observer;
}

fn owner_slot() -> &'static Mutex<Option<String>> {
    static OWNER: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    OWNER.get_or_init(|| Mutex::new(None))
}

/// Exclusive claim on the process-global fault state, released (and the
/// state [`disarm`]ed) on drop. Cooperative: concurrent users — daemon
/// requests, primarily — must [`acquire`] before [`install`]ing so one
/// request's injected faults can never leak into another's execution. The
/// one-shot CLI, which owns its whole process, installs directly.
#[must_use = "dropping the ownership immediately disarms and releases it"]
#[derive(Debug)]
pub struct FaultOwnership {
    owner: String,
}

impl FaultOwnership {
    /// The label this claim was acquired under.
    pub fn owner(&self) -> &str {
        &self.owner
    }
}

impl Drop for FaultOwnership {
    fn drop(&mut self) {
        disarm();
        *owner_slot().lock().unwrap() = None;
    }
}

/// Claim exclusive ownership of the global fault state under `owner` (e.g.
/// a daemon request id). Fails — naming the current holder, so the caller
/// can produce a useful "busy" error — when another claim is live.
pub fn acquire(owner: &str) -> Result<FaultOwnership, String> {
    let mut slot = owner_slot().lock().unwrap();
    match &*slot {
        Some(current) => Err(format!(
            "fault injection is exclusively owned by '{current}'"
        )),
        None => {
            *slot = Some(owner.to_string());
            Ok(FaultOwnership {
                owner: owner.to_string(),
            })
        }
    }
}

/// The label of the live [`FaultOwnership`] claim, if any.
pub fn current_owner() -> Option<String> {
    owner_slot().lock().unwrap().clone()
}

/// Evaluate failpoint `name`: `Some(fault)` when an armed entry fires.
/// Costs one relaxed load when disarmed.
#[inline]
pub fn point(name: &str) -> Option<Fault> {
    if !armed() {
        return None;
    }
    evaluate(name)
}

#[cold]
fn evaluate(name: &str) -> Option<Fault> {
    let state = state_slot().lock().unwrap().clone()?;
    let scope = scope_slot().lock().unwrap().clone();
    for (i, entry) in state.config.entries.iter().enumerate() {
        if entry.point != name {
            continue;
        }
        if let Some(filter) = &entry.scope {
            if *filter != scope {
                continue;
            }
        }
        let draw = state.draws[i].fetch_add(1, Ordering::Relaxed);
        let x = splitmix64(
            state
                .config
                .seed
                .wrapping_add(fnv1a(&entry.label()))
                .wrapping_add(draw.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        // Top 53 bits as a uniform fraction in [0, 1).
        let frac = (x >> 11) as f64 / (1u64 << 53) as f64;
        if frac < entry.rate {
            state.fired[i].fetch_add(1, Ordering::Relaxed);
            if let Some(obs) = *observer_slot().lock().unwrap() {
                obs(name, entry.mode.name());
            }
            return Some(Fault {
                point: name.to_string(),
                mode: entry.mode,
                entropy: splitmix64(x),
            });
        }
    }
    None
}

/// Control-flow failpoint: panic, return an [`InjectedError`], or stall,
/// as the armed entry dictates. Data-fault modes (`flip`, `truncate`) are
/// inert here — they belong to [`corrupt_bytes`] / [`truncated_len`] sites.
///
/// # Panics
/// Panics (message prefixed `simfault:`) when a `panic`-mode entry fires.
#[inline]
pub fn fail_point(name: &str) -> Result<(), InjectedError> {
    if !armed() {
        return Ok(());
    }
    act(name)
}

#[cold]
fn act(name: &str) -> Result<(), InjectedError> {
    match evaluate(name) {
        Some(Fault {
            mode: FaultMode::Panic,
            point,
            ..
        }) => panic!("simfault: injected panic at failpoint '{point}'"),
        Some(Fault {
            mode: FaultMode::Err,
            point,
            ..
        }) => Err(InjectedError { point }),
        Some(Fault {
            mode: FaultMode::Stall(d),
            ..
        }) => {
            std::thread::sleep(d);
            Ok(())
        }
        _ => Ok(()),
    }
}

/// Data-corruption failpoint: when a `flip`-mode entry fires, flip one
/// deterministically-chosen bit of `bytes`. Returns `true` when the buffer
/// was corrupted. One relaxed load when disarmed.
#[inline]
pub fn corrupt_bytes(name: &str, bytes: &mut [u8]) -> bool {
    if !armed() || bytes.is_empty() {
        return false;
    }
    corrupt_cold(name, bytes)
}

#[cold]
fn corrupt_cold(name: &str, bytes: &mut [u8]) -> bool {
    match evaluate(name) {
        Some(Fault {
            mode: FaultMode::Flip,
            entropy,
            ..
        }) => {
            let byte = (entropy as usize) % bytes.len();
            let bit = ((entropy >> 32) % 8) as u8;
            bytes[byte] ^= 1 << bit;
            true
        }
        _ => false,
    }
}

/// Torn-write failpoint: when a `truncate`-mode entry fires for a write of
/// `len` bytes, returns the (strictly shorter) length to actually write —
/// what a mid-write kill of a non-atomic writer would have left behind.
/// One relaxed load when disarmed.
#[inline]
pub fn truncated_len(name: &str, len: usize) -> Option<usize> {
    if !armed() {
        return None;
    }
    truncate_cold(name, len)
}

#[cold]
fn truncate_cold(name: &str, len: usize) -> Option<usize> {
    match evaluate(name) {
        Some(Fault {
            mode: FaultMode::Truncate,
            entropy,
            ..
        }) => {
            // Anywhere in the first half, so the tear is never mistakable
            // for a complete write.
            Some((entropy as usize) % (len / 2).max(1))
        }
        _ => None,
    }
}

/// Total faults fired since the last [`install`].
pub fn fired_total() -> u64 {
    match &*state_slot().lock().unwrap() {
        Some(s) => s.fired.iter().map(|c| c.load(Ordering::Relaxed)).sum(),
        None => 0,
    }
}

/// Per-entry fired counts since the last [`install`], labelled in spec
/// syntax (`point[@scope]=mode:rate`).
pub fn fired_counts() -> Vec<(String, u64)> {
    match &*state_slot().lock().unwrap() {
        Some(s) => s
            .config
            .entries
            .iter()
            .zip(&s.fired)
            .map(|(e, c)| (e.label(), c.load(Ordering::Relaxed)))
            .collect(),
        None => Vec::new(),
    }
}

/// SplitMix64: the standard 64-bit finalizer-style mixer (public domain,
/// Sebastiano Vigna) — full avalanche, so consecutive counter values give
/// independent-looking draws.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over the entry label: stable, dependency-free string hash so each
/// entry draws an independent deterministic stream.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests that arm the global state.
    fn lock() -> simsched::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn parse_issue_example() {
        let c = FaultConfig::parse("gpusim.launch=err:0.05,seed=42").unwrap();
        assert_eq!(c.seed, 42);
        assert_eq!(c.entries.len(), 1);
        assert_eq!(c.entries[0].point, "gpusim.launch");
        assert_eq!(c.entries[0].mode, FaultMode::Err);
        assert!((c.entries[0].rate - 0.05).abs() < 1e-12);
        assert!(c.unknown_points().is_empty());
    }

    #[test]
    fn parse_scope_stall_and_defaults() {
        let c = FaultConfig::parse(
            "gpusim.launch@Stream_TRIAD=panic, suite.kernel=stall(250):0.5, io.write=truncate",
        )
        .unwrap();
        assert_eq!(c.entries[0].scope.as_deref(), Some("Stream_TRIAD"));
        assert_eq!(c.entries[0].rate, 1.0);
        assert_eq!(
            c.entries[1].mode,
            FaultMode::Stall(Duration::from_millis(250))
        );
        assert_eq!(c.entries[2].mode, FaultMode::Truncate);
        let c = FaultConfig::parse("x=stall").unwrap();
        assert_eq!(c.entries[0].mode, FaultMode::Stall(DEFAULT_STALL));
        assert_eq!(c.unknown_points(), vec!["x"]);
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(FaultConfig::parse("").is_err());
        assert!(FaultConfig::parse("seed=7").is_err(), "arms nothing");
        assert!(FaultConfig::parse("p=warp").is_err(), "unknown mode");
        assert!(FaultConfig::parse("p=err:1.5").is_err(), "rate > 1");
        assert!(FaultConfig::parse("p=err:x").is_err());
        assert!(FaultConfig::parse("=err").is_err(), "empty point");
        assert!(FaultConfig::parse("seed=abc,p=err").is_err());
    }

    #[test]
    fn disarmed_points_are_inert() {
        let _g = lock();
        disarm();
        assert!(!armed());
        assert!(point("gpusim.launch").is_none());
        assert!(fail_point("gpusim.launch").is_ok());
        let mut buf = [1u8, 2, 3];
        assert!(!corrupt_bytes("gpusim.ecc", &mut buf));
        assert_eq!(buf, [1, 2, 3]);
        assert!(truncated_len("io.write", 100).is_none());
        assert_eq!(fired_total(), 0);
    }

    #[test]
    fn rate_one_always_fires_and_rate_zero_never() {
        let _g = lock();
        install_spec("a=err:1.0,b=err:0.0,seed=3").unwrap();
        for _ in 0..32 {
            assert!(fail_point("a").is_err());
            assert!(fail_point("b").is_ok());
        }
        assert_eq!(fired_total(), 32);
        disarm();
    }

    #[test]
    fn same_seed_replays_identical_decision_sequence() {
        let _g = lock();
        let draw_seq = |spec: &str| -> Vec<bool> {
            install_spec(spec).unwrap();
            let seq = (0..200).map(|_| point("p").is_some()).collect();
            disarm();
            seq
        };
        let a = draw_seq("p=err:0.3,seed=42");
        let b = draw_seq("p=err:0.3,seed=42");
        let c = draw_seq("p=err:0.3,seed=43");
        assert_eq!(a, b, "same seed must replay the same sequence");
        assert_ne!(a, c, "different seed must diverge somewhere in 200 draws");
        let hits = a.iter().filter(|&&f| f).count();
        assert!(
            (20..=100).contains(&hits),
            "rate 0.3 over 200 draws fired {hits} times"
        );
        disarm();
    }

    #[test]
    fn scope_filter_gates_scoped_entries() {
        let _g = lock();
        install_spec("p@K1=err:1.0").unwrap();
        assert!(fail_point("p").is_ok(), "no scope set: filtered entry inert");
        {
            let _s = scoped("K1");
            assert!(fail_point("p").is_err());
            {
                let _inner = scoped("K2");
                assert!(fail_point("p").is_ok());
            }
            assert!(fail_point("p").is_err(), "inner guard restored K1");
        }
        assert!(fail_point("p").is_ok(), "guard restored empty scope");
        disarm();
    }

    #[test]
    fn corrupt_bytes_flips_exactly_one_bit_deterministically() {
        let _g = lock();
        install_spec("gpusim.ecc=flip:1.0,seed=9").unwrap();
        let mut a = vec![0u8; 64];
        assert!(corrupt_bytes("gpusim.ecc", &mut a));
        let ones: u32 = a.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1, "exactly one bit flipped");
        // Re-install: the first corruption hits the same bit.
        install_spec("gpusim.ecc=flip:1.0,seed=9").unwrap();
        let mut b = vec![0u8; 64];
        assert!(corrupt_bytes("gpusim.ecc", &mut b));
        assert_eq!(a, b);
        disarm();
    }

    #[test]
    fn truncated_len_is_a_strict_prefix() {
        let _g = lock();
        install_spec("io.write=truncate:1.0,seed=5").unwrap();
        for len in [1usize, 2, 10, 4096] {
            let keep = truncated_len("io.write", len).expect("rate 1.0 fires");
            assert!(keep < len, "torn write of {len} kept {keep}");
        }
        disarm();
    }

    #[test]
    fn panic_mode_panics_with_simfault_prefix() {
        let _g = lock();
        install_spec("p=panic:1.0").unwrap();
        let err = std::panic::catch_unwind(|| {
            let _ = fail_point("p");
        })
        .expect_err("panic mode must unwind");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.starts_with("simfault: injected panic"), "{msg}");
        disarm();
    }

    #[test]
    fn ownership_is_exclusive_and_released_on_drop() {
        let _g = lock();
        let claim = acquire("request-1").unwrap();
        assert_eq!(claim.owner(), "request-1");
        assert_eq!(current_owner().as_deref(), Some("request-1"));
        install_spec("p=err:1.0").unwrap();
        assert!(armed());
        // A second claimant is refused and told who holds the state.
        let err = acquire("request-2").unwrap_err();
        assert!(err.contains("request-1"), "{err}");
        // Dropping the claim disarms *and* releases: the next request can
        // never observe the previous request's faults.
        drop(claim);
        assert!(!armed(), "drop must disarm");
        assert_eq!(current_owner(), None);
        let claim2 = acquire("request-2").unwrap();
        assert!(fail_point("p").is_ok(), "previous spec is gone");
        drop(claim2);
    }

    #[test]
    fn fired_counts_label_entries_in_spec_syntax() {
        let _g = lock();
        install_spec("a=err:1.0,b@K=panic:0.5,seed=1").unwrap();
        let _ = fail_point("a");
        let counts = fired_counts();
        assert_eq!(counts.len(), 2);
        assert_eq!(counts[0], ("a=err:1".to_string(), 1));
        assert_eq!(counts[1].0, "b@K=panic:0.5");
        assert_eq!(counts[1].1, 0);
        disarm();
    }
}
