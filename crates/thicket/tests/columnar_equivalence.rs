//! Property tests: the columnar engine is observation-equivalent to the
//! row-oriented semantics it replaced. A tiny in-test reference model (a
//! map of `(path, profile) -> metric -> value` with last-write-wins
//! inserts, exactly what the old per-column `BTreeMap` did) is driven with
//! the same randomized profiles; every observable — `value`, `node_values`,
//! `stats`, `groupby`, `filter_metadata`, `row_count`, the `.tkt`
//! round-trip — must agree across bulk ingestion, streaming ingestion, and
//! concat composition.

use proptest::prelude::*;
use std::collections::BTreeMap;
use thicket::{IngestSession, ProfileData, Stat, Thicket, MISSING_GROUP};

const PATHS: [&str; 4] = ["Stream_K0", "Stream_K1", "Basic_K0", "Basic_K1"];
const METRICS: [&str; 2] = ["t", "b"];
const VARIANTS: [&str; 3] = ["v0", "v1", "v2"];

/// One synthetic record: a leaf path, and a value per selected metric.
#[derive(Debug, Clone)]
struct RecSpec {
    path: usize,
    values: Vec<(usize, i32)>,
}

/// One synthetic profile: optional variant metadata plus records.
#[derive(Debug, Clone)]
struct ProfileSpec {
    variant: Option<usize>,
    records: Vec<RecSpec>,
}

fn profile_data(spec: &ProfileSpec) -> ProfileData {
    let mut globals = BTreeMap::new();
    if let Some(v) = spec.variant {
        globals.insert(
            "variant".to_string(),
            serde_json::Value::String(VARIANTS[v].to_string()),
        );
    }
    let records = spec
        .records
        .iter()
        .map(|r| {
            let mut metrics = BTreeMap::new();
            for &(m, v) in &r.values {
                metrics.insert(METRICS[m].to_string(), v as f64);
            }
            (
                vec!["RAJAPerf".to_string(), PATHS[r.path].to_string()],
                metrics,
            )
        })
        .collect();
    ProfileData { globals, records }
}

/// The row-oriented reference: `(path, profile) -> metric -> value`,
/// applied record by record with per-metric overwrite — the old engine's
/// `BTreeMap::insert` semantics.
#[derive(Debug, Default)]
struct RefModel {
    cells: BTreeMap<(String, usize), BTreeMap<String, f64>>,
    variants: BTreeMap<usize, Option<usize>>,
}

impl RefModel {
    fn build(specs: &[ProfileSpec]) -> RefModel {
        let mut model = RefModel::default();
        for (pid, spec) in specs.iter().enumerate() {
            model.variants.insert(pid, spec.variant);
            for rec in &spec.records {
                if rec.values.is_empty() {
                    continue; // metric-less records never materialize a row
                }
                let cell = model
                    .cells
                    .entry((PATHS[rec.path].to_string(), pid))
                    .or_default();
                for &(m, v) in &rec.values {
                    cell.insert(METRICS[m].to_string(), v as f64);
                }
            }
        }
        model
    }

    /// Values of `metric` under `path`, profile-ascending — the reference
    /// for `node_values` and the aggregation input order for `stats`.
    fn node_values(&self, path: &str, metric: &str) -> Vec<(usize, f64)> {
        self.cells
            .iter()
            .filter(|((p, _), _)| p == path)
            .filter_map(|((_, pid), ms)| ms.get(metric).map(|&v| (*pid, v)))
            .collect()
    }

    fn profiles(&self) -> Vec<usize> {
        self.variants.keys().copied().collect()
    }
}

/// Canonical observation dump keyed by node path (node *ids* may differ
/// across composition orders; observations may not).
fn dump(t: &Thicket) -> BTreeMap<(String, String), Vec<(usize, u64)>> {
    let mut out = BTreeMap::new();
    for (nid, node) in t.nodes.iter().enumerate() {
        for col in t.column_names() {
            let vals: Vec<(usize, u64)> = t
                .node_values(col, nid)
                .into_iter()
                .map(|(p, v)| (p, v.to_bits()))
                .collect();
            if !vals.is_empty() {
                out.insert((node.path.join("/"), col.to_string()), vals);
            }
        }
    }
    out
}

fn rec_spec() -> impl Strategy<Value = RecSpec> {
    (
        0..PATHS.len(),
        prop::collection::vec((0..METRICS.len(), -100i32..100), 0..3),
    )
        .prop_map(|(path, values)| RecSpec { path, values })
}

fn profile_spec() -> impl Strategy<Value = ProfileSpec> {
    (
        prop::option::of(0..VARIANTS.len()),
        prop::collection::vec(rec_spec(), 0..5),
    )
        .prop_map(|(variant, records)| ProfileSpec { variant, records })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn columnar_engine_matches_row_oriented_reference(
        specs in prop::collection::vec(profile_spec(), 1..10),
        split in 0usize..10,
    ) {
        let data: Vec<ProfileData> = specs.iter().map(profile_data).collect();
        let model = RefModel::build(&specs);

        // Three composition routes, one answer.
        let bulk = Thicket::from_profiles(&data);
        let mut session = IngestSession::new();
        for p in &data {
            session.ingest(p);
        }
        let streamed = session.finish();
        let split = split.min(data.len());
        let concatenated = Thicket::concat(&[
            Thicket::from_profiles(&data[..split]),
            Thicket::from_profiles(&data[split..]),
        ]);
        let d = dump(&bulk);
        prop_assert_eq!(&d, &dump(&streamed), "streaming ingest diverged");
        prop_assert_eq!(&d, &dump(&concatenated), "concat composition diverged");

        // Observations match the reference model cell for cell.
        prop_assert_eq!(bulk.profiles.clone(), model.profiles());
        let mut expected_rows = 0usize;
        for (nid, node) in bulk.nodes.iter().enumerate() {
            let path = node.name().to_string();
            let mut node_has_row = vec![];
            for metric in METRICS {
                let expect = model.node_values(&path, metric);
                prop_assert_eq!(
                    bulk.node_values(metric, nid).iter().map(|&(p, v)| (p, v.to_bits())).collect::<Vec<_>>(),
                    expect.iter().map(|&(p, v)| (p, v.to_bits())).collect::<Vec<_>>(),
                    "node_values({}, {})", metric, &path
                );
                for &(pid, v) in &expect {
                    prop_assert_eq!(bulk.value(metric, nid, pid), Some(v));
                    node_has_row.push(pid);
                }
            }
            node_has_row.sort_unstable();
            node_has_row.dedup();
            expected_rows += node_has_row.len();
        }
        prop_assert_eq!(bulk.row_count(), expected_rows);

        // Parallel stats reduce in the model's profile order.
        let mut stats_t = bulk.clone();
        for (stat, reduce) in [
            (Stat::Mean, (|vs: &[f64]| vs.iter().sum::<f64>() / vs.len() as f64) as fn(&[f64]) -> f64),
            (Stat::Max, |vs: &[f64]| vs.iter().copied().fold(f64::NEG_INFINITY, f64::max)),
        ] {
            let col = stats_t.stats("t", stat);
            for (nid, node) in bulk.nodes.iter().enumerate() {
                let vals: Vec<f64> = model
                    .node_values(node.name(), "t")
                    .into_iter()
                    .map(|(_, v)| v)
                    .collect();
                let got = stats_t.stat_value(&col, nid);
                if vals.is_empty() {
                    prop_assert!(got.is_none() || got.is_some_and(f64::is_nan));
                } else {
                    prop_assert_eq!(got.map(f64::to_bits), Some(reduce(&vals).to_bits()));
                }
            }
        }

        // groupby partitions every profile exactly once, missing-keyed
        // profiles under the sentinel, and each group is the filtered dump.
        let groups = bulk.groupby("variant");
        let mut seen = 0usize;
        for (label, group) in &groups {
            let expect_pids: Vec<usize> = model
                .variants
                .iter()
                .filter(|(_, v)| match v {
                    Some(i) => VARIANTS[*i] == label.as_str(),
                    None => label == MISSING_GROUP,
                })
                .map(|(p, _)| *p)
                .collect();
            prop_assert_eq!(&group.profiles, &expect_pids, "group {}", label);
            seen += group.profiles.len();
            for ((path, col), vals) in dump(group) {
                let expect: Vec<(usize, u64)> = model
                    .node_values(path.rsplit('/').next().unwrap(), &col)
                    .into_iter()
                    .filter(|(p, _)| expect_pids.contains(p))
                    .map(|(p, v)| (p, v.to_bits()))
                    .collect();
                prop_assert_eq!(vals, expect, "group {} {}/{}", label, path, col);
            }
        }
        prop_assert_eq!(seen, bulk.profiles.len(), "groupby must partition");

        // filter_metadata keeps exactly the matching profiles.
        let filtered = bulk.filter_metadata(|md| {
            md.get("variant").and_then(|v| v.as_str()) == Some("v1")
        });
        let expect_pids: Vec<usize> = model
            .variants
            .iter()
            .filter(|(_, v)| **v == Some(1))
            .map(|(p, _)| *p)
            .collect();
        prop_assert_eq!(&filtered.profiles, &expect_pids);

        // The on-disk snapshot preserves every observation bit for bit.
        let path = std::env::temp_dir().join(format!(
            "thicket_prop_{}_{split}.tkt",
            std::process::id()
        ));
        bulk.write_tkt(&path).expect("snapshot writes");
        let reopened = Thicket::read_tkt(&path).expect("snapshot reopens");
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(&d, &dump(&reopened), "tkt round-trip diverged");
        prop_assert_eq!(&bulk.metadata, &reopened.metadata);
    }
}
