//! Fault-tolerant profile ingestion: truncated / non-JSON `.cali.json`
//! files produce descriptive errors (file path + byte offset) and are
//! skipped — not fatal — when ingesting a whole campaign directory.

use thicket::{ProfileData, Thicket};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("thicket_ingest_{}_{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

const GOOD: &str = r#"{
  "globals": {"variant": "Base_Seq"},
  "records": [{"path": ["main", "Stream_TRIAD"], "metrics": {"avg#time.duration": 1.5}}]
}"#;

#[test]
fn truncated_profile_errors_with_path_and_byte_offset() {
    let dir = tmpdir("trunc");
    let path = dir.join("torn.cali.json");
    // A torn write: a strict prefix of a valid profile.
    std::fs::write(&path, &GOOD.as_bytes()[..GOOD.len() / 2]).unwrap();
    let err = ProfileData::read_file(&path).expect_err("truncated JSON must not parse");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let msg = err.to_string();
    assert!(msg.contains("torn.cali.json"), "no file path in: {msg}");
    assert!(msg.contains("at byte"), "no byte offset in: {msg}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn non_json_profile_errors_instead_of_panicking() {
    let dir = tmpdir("nonjson");
    let path = dir.join("garbage.cali.json");
    std::fs::write(&path, b"\x00\x01\xffnot json at all").unwrap();
    let err = ProfileData::read_file(&path).expect_err("garbage must not parse");
    let msg = err.to_string();
    assert!(msg.contains("garbage.cali.json"), "no file path in: {msg}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_file_error_names_the_file() {
    let err = ProfileData::read_file(std::path::Path::new("/nonexistent/run.cali.json"))
        .expect_err("missing file");
    assert!(err.to_string().contains("/nonexistent/run.cali.json"));
}

#[test]
fn from_files_skips_corrupt_profiles_with_warnings() {
    let dir = tmpdir("fromfiles");
    let good_a = dir.join("a.cali.json");
    let torn = dir.join("torn.cali.json");
    let good_b = dir.join("b.cali.json");
    std::fs::write(&good_a, GOOD).unwrap();
    std::fs::write(&torn, &GOOD.as_bytes()[..20]).unwrap();
    std::fs::write(&good_b, GOOD.replace("Base_Seq", "RAJA_Seq")).unwrap();

    let (t, stats) = Thicket::from_files(&[&good_a, &torn, &good_b]);
    assert_eq!(stats.ingested, 2);
    assert_eq!(stats.warnings(), 1);
    assert_eq!(stats.skipped[0].0, torn);
    assert!(stats.skipped[0].1.contains("torn.cali.json"));
    assert_eq!(t.profiles.len(), 2, "both intact profiles ingested");
    let variants: Vec<_> = t
        .profiles
        .iter()
        .filter_map(|p| t.metadata.get(p))
        .filter_map(|m| m.get("variant"))
        .filter_map(|v| v.as_str().map(String::from))
        .collect();
    assert_eq!(variants, vec!["Base_Seq", "RAJA_Seq"]);
    let _ = std::fs::remove_dir_all(&dir);
}
