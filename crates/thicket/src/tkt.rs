//! `.tkt`: the chunked on-disk binary format for composed thickets.
//!
//! Composing a corpus parses every Caliper JSON file once; re-running an
//! analysis should not repeat that. [`Thicket::write_tkt`] persists the
//! compacted columnar frame so [`Thicket::read_tkt`] reopens a
//! million-profile corpus in seconds — no JSON re-parse of the profiles,
//! no re-sort of the row index.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header   magic "TKT1", u32 version
//! sections raw bytes, back to back:
//!   "head"        JSON: nodes, profiles, metadata, statsframe
//!   "index"       row index, chunked: u32 nchunks, then per chunk
//!                 u32 count + count × (u32 node, u32 profile)
//!   "col:<name>"  one per metric column, chunked: u32 nchunks, then per
//!                 chunk u32 count + count × f64 value + ⌈count/8⌉ bytes
//!                 of LSB-first validity bits
//! footer   JSON {"sections": {name: [offset, len]}}
//! tail     u64 footer offset, u64 footer len, magic "TKT1"
//! ```
//!
//! The footer-at-end layout lets the writer stream sections without
//! knowing sizes up front, and the fixed-size tail lets the reader find
//! the footer without scanning. Writes go through a temp file + rename, so
//! a mid-write kill never leaves a torn `.tkt` behind (same discipline as
//! `caliper::write_atomic`).

use crate::columnar::{Column, Frame};
use crate::{id32, Node, Thicket};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{self, Read, Seek, SeekFrom, Write};

const MAGIC: &[u8; 4] = b"TKT1";
const VERSION: u32 = 1;
/// Rows (and column cells) per chunk: big enough to amortize per-chunk
/// framing, small enough that partial readers stream.
const CHUNK_ROWS: usize = 65_536;

/// Everything outside the frame, stored as one JSON section. Maps with
/// integer keys are flattened to pair lists so the encoding never depends
/// on JSON map-key coercion.
#[derive(Serialize, Deserialize)]
struct Head {
    nodes: Vec<Node>,
    profiles: Vec<usize>,
    metadata: Vec<(usize, BTreeMap<String, serde_json::Value>)>,
    statsframe: Vec<(String, Vec<(usize, f64)>)>,
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    what: &'a str,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(bad(format!("truncated {} section", self.what)));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
}

/// Encode the row index section.
fn encode_index(rows: &[(u32, u32)]) -> Vec<u8> {
    let chunks: Vec<&[(u32, u32)]> = rows.chunks(CHUNK_ROWS.max(1)).collect();
    let mut out = Vec::with_capacity(8 + rows.len() * 8);
    put_u32(&mut out, chunks.len() as u32);
    for chunk in chunks {
        put_u32(&mut out, chunk.len() as u32);
        for &(n, p) in chunk {
            put_u32(&mut out, n);
            put_u32(&mut out, p);
        }
    }
    out
}

fn decode_index(buf: &[u8]) -> io::Result<Vec<(u32, u32)>> {
    let mut c = Cursor {
        buf,
        pos: 0,
        what: "index",
    };
    let nchunks = c.u32()?;
    let mut rows = Vec::new();
    for _ in 0..nchunks {
        let count = c.u32()? as usize;
        rows.reserve(count);
        for _ in 0..count {
            let n = c.u32()?;
            let p = c.u32()?;
            rows.push((n, p));
        }
    }
    Ok(rows)
}

/// Encode one column section (values + validity, chunked like the index).
fn encode_column(col: &Column) -> Vec<u8> {
    let n = col.values.len();
    let nchunks = n.div_ceil(CHUNK_ROWS).max(1);
    let mut out = Vec::with_capacity(8 + n * 9);
    put_u32(&mut out, nchunks as u32);
    for c in 0..nchunks {
        let (s, e) = (c * CHUNK_ROWS, ((c + 1) * CHUNK_ROWS).min(n));
        put_u32(&mut out, (e - s) as u32);
        for i in s..e {
            out.extend_from_slice(&col.values[i].to_le_bytes());
        }
        let mut byte = 0u8;
        for i in s..e {
            if col.valid.get(i) {
                byte |= 1 << ((i - s) % 8);
            }
            if (i - s) % 8 == 7 {
                out.push(byte);
                byte = 0;
            }
        }
        if (e - s) % 8 != 0 {
            out.push(byte);
        }
    }
    out
}

fn decode_column(buf: &[u8], name: &str) -> io::Result<Column> {
    let mut c = Cursor {
        buf,
        pos: 0,
        what: name,
    };
    let nchunks = c.u32()?;
    let mut col = Column::default();
    for _ in 0..nchunks {
        let count = c.u32()? as usize;
        let mut vals = Vec::with_capacity(count);
        for _ in 0..count {
            let raw = c.take(8)?;
            vals.push(f64::from_le_bytes(raw.try_into().expect("8 bytes")));
        }
        let bits = c.take(count.div_ceil(8))?;
        for (i, v) in vals.into_iter().enumerate() {
            if bits[i / 8] >> (i % 8) & 1 == 1 {
                col.values.push(v);
                col.valid.push(true);
            } else {
                // Invalid cells re-read as NaN placeholders regardless of
                // what the writer stored.
                col.values.push(f64::NAN);
                col.valid.push(false);
            }
        }
    }
    Ok(col)
}

/// Write `contents` to `path` via a same-directory temp file + rename, so
/// concurrent readers only ever see complete files.
fn write_atomic(path: &std::path::Path, contents: &[u8]) -> io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| std::path::Path::new("."));
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("thicket");
    let tmp = dir.join(format!(".{name}.{}.tmp", std::process::id()));
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(contents)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

impl Thicket {
    /// Persist this thicket (compacted) as a `.tkt` file.
    pub fn write_tkt(&self, path: &std::path::Path) -> io::Result<()> {
        let frame = self.frame_view();
        let head = Head {
            nodes: self.nodes.clone(),
            profiles: self.profiles.clone(),
            metadata: self
                .metadata
                .iter()
                .map(|(&p, md)| (p, (**md).clone()))
                .collect(),
            statsframe: self
                .statsframe
                .iter()
                .map(|(c, m)| (c.clone(), m.iter().map(|(&n, &v)| (n, v)).collect()))
                .collect(),
        };

        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, VERSION);

        let mut sections: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        let mut emit = |out: &mut Vec<u8>, name: String, bytes: Vec<u8>| {
            sections.insert(name, (out.len() as u64, bytes.len() as u64));
            out.extend_from_slice(&bytes);
        };
        emit(
            &mut out,
            "head".to_string(),
            serde_json::to_string(&head)
                .expect("head serialization cannot fail")
                .into_bytes(),
        );
        emit(&mut out, "index".to_string(), encode_index(frame.rows()));
        for (name, col) in frame.columns() {
            emit(&mut out, format!("col:{name}"), encode_column(col));
        }

        let footer = serde_json::to_string(&sections)
            .expect("footer serialization cannot fail")
            .into_bytes();
        let footer_off = out.len() as u64;
        out.extend_from_slice(&footer);
        out.extend_from_slice(&footer_off.to_le_bytes());
        out.extend_from_slice(&(footer.len() as u64).to_le_bytes());
        out.extend_from_slice(MAGIC);

        write_atomic(path, &out)
    }

    /// Reopen a thicket written by [`Thicket::write_tkt`]. Malformed or
    /// truncated files return `InvalidData` errors naming what broke —
    /// never a panic.
    pub fn read_tkt(path: &std::path::Path) -> io::Result<Thicket> {
        let mut f = std::fs::File::open(path)
            .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
        let file_len = f.seek(SeekFrom::End(0))?;
        if file_len < 8 + 20 {
            return Err(bad(format!("{}: too short for a .tkt file", path.display())));
        }

        let mut header = [0u8; 8];
        f.seek(SeekFrom::Start(0))?;
        f.read_exact(&mut header)?;
        if &header[0..4] != MAGIC {
            return Err(bad(format!("{}: bad magic (not a .tkt file)", path.display())));
        }
        let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(bad(format!(
                "{}: unsupported .tkt version {version} (supported: {VERSION})",
                path.display()
            )));
        }

        let mut tail = [0u8; 20];
        f.seek(SeekFrom::End(-20))?;
        f.read_exact(&mut tail)?;
        if &tail[16..20] != MAGIC {
            return Err(bad(format!("{}: truncated (tail magic missing)", path.display())));
        }
        let footer_off = u64::from_le_bytes(tail[0..8].try_into().expect("8 bytes"));
        let footer_len = u64::from_le_bytes(tail[8..16].try_into().expect("8 bytes"));
        if footer_off + footer_len + 20 > file_len {
            return Err(bad(format!("{}: footer out of bounds", path.display())));
        }
        let mut footer = vec![0u8; footer_len as usize];
        f.seek(SeekFrom::Start(footer_off))?;
        f.read_exact(&mut footer)?;
        let sections: BTreeMap<String, (u64, u64)> = serde_json::from_str(
            std::str::from_utf8(&footer).map_err(|_| bad("footer is not UTF-8"))?,
        )
        .map_err(|e| bad(format!("{}: malformed footer: {e}", path.display())))?;

        let mut read_section = |name: &str| -> io::Result<Vec<u8>> {
            let &(off, len) = sections
                .get(name)
                .ok_or_else(|| bad(format!("{}: missing section {name}", path.display())))?;
            if off + len > file_len {
                return Err(bad(format!("{}: section {name} out of bounds", path.display())));
            }
            let mut buf = vec![0u8; len as usize];
            f.seek(SeekFrom::Start(off))?;
            f.read_exact(&mut buf)?;
            Ok(buf)
        };

        let head_bytes = read_section("head")?;
        let head: Head = serde_json::from_str(
            std::str::from_utf8(&head_bytes).map_err(|_| bad("head is not UTF-8"))?,
        )
        .map_err(|e| bad(format!("{}: malformed head: {e}", path.display())))?;

        let rows = decode_index(&read_section("index")?)?;
        let mut columns = BTreeMap::new();
        for name in sections.keys() {
            if let Some(col_name) = name.strip_prefix("col:") {
                let col = decode_column(&read_section(name)?, name)?;
                if col.values.len() != rows.len() {
                    return Err(bad(format!(
                        "{}: column {col_name} has {} cells for {} rows",
                        path.display(),
                        col.values.len(),
                        rows.len()
                    )));
                }
                columns.insert(col_name.to_string(), col);
            }
        }

        // Sanity: row ids must be inside the declared node set.
        let nnodes = head.nodes.len();
        if let Some(&(n, _)) = rows.iter().find(|&&(n, _)| n as usize >= nnodes) {
            return Err(bad(format!(
                "{}: row references node {n} outside the {nnodes}-node set",
                path.display()
            )));
        }
        // The index must be sorted node-major; a compacted frame's
        // invariants depend on it, so verify instead of trusting the disk.
        if !rows.windows(2).all(|w| w[0] < w[1]) {
            return Err(bad(format!(
                "{}: row index is not strictly node-major sorted",
                path.display()
            )));
        }
        for &p in &head.profiles {
            let _ = id32(p); // asserts the id fits the row space
        }

        let frame = Frame::from_parts(rows, columns, nnodes);
        Ok(Thicket::from_parts(
            head.nodes,
            head.profiles,
            frame,
            head.metadata
                .into_iter()
                .map(|(p, md)| (p, std::sync::Arc::new(md)))
                .collect(),
            head.statsframe
                .into_iter()
                .map(|(c, m)| (c, m.into_iter().collect()))
                .collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProfileData, Stat};

    fn corpus(n: usize) -> Vec<ProfileData> {
        (0..n)
            .map(|i| {
                let mut globals = BTreeMap::new();
                globals.insert("variant".to_string(), serde_json::json!(format!("v{}", i % 3)));
                let mut metrics = BTreeMap::new();
                metrics.insert("t".to_string(), i as f64 + 0.25);
                if i % 2 == 0 {
                    metrics.insert("bytes".to_string(), (i * 8) as f64);
                }
                ProfileData {
                    globals,
                    records: vec![
                        (vec!["RAJAPerf".into(), format!("K{}", i % 5)], metrics),
                    ],
                }
            })
            .collect()
    }

    #[test]
    fn tkt_round_trips_the_full_thicket() {
        let dir = std::env::temp_dir().join(format!("tkt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.tkt");

        let mut t = Thicket::from_profiles(&corpus(50));
        t.stats("t", Stat::Mean);
        t.write_tkt(&path).unwrap();
        let back = Thicket::read_tkt(&path).unwrap();

        assert_eq!(back.profiles, t.profiles);
        assert_eq!(back.nodes, t.nodes);
        assert_eq!(back.metadata, t.metadata);
        assert_eq!(back.statsframe, t.statsframe);
        assert_eq!(back.to_csv(), t.to_csv());
        assert_eq!(back.heatmap("t"), t.heatmap("t"));
        // The reopened thicket keeps ingesting.
        let mut s = crate::IngestSession::from_thicket(back);
        s.ingest(&corpus(1)[0]);
        let grown = s.finish();
        assert_eq!(grown.profiles.len(), 51);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_or_corrupt_tkt_is_an_error_not_a_panic() {
        let dir = std::env::temp_dir().join(format!("tkt-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.tkt");
        let t = Thicket::from_profiles(&corpus(10));
        t.write_tkt(&path).unwrap();

        let full = std::fs::read(&path).unwrap();
        // Truncations at every region: header, sections, footer, tail.
        for cut in [4usize, 12, full.len() / 2, full.len() - 5] {
            std::fs::write(&path, &full[..cut]).unwrap();
            assert!(Thicket::read_tkt(&path).is_err(), "cut at {cut} must error");
        }
        // Wrong magic.
        let mut bad_magic = full.clone();
        bad_magic[0] = b'X';
        std::fs::write(&path, &bad_magic).unwrap();
        assert!(Thicket::read_tkt(&path).is_err());
        // Missing file has a named error.
        let err = Thicket::read_tkt(&dir.join("absent.tkt")).unwrap_err();
        assert!(err.to_string().contains("absent.tkt"));

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
