//! Columnar storage engine backing the [`crate::Thicket`] performance
//! dataframe.
//!
//! The row-oriented engine kept one `BTreeMap<(node, profile), f64>` per
//! metric column; every aggregation walked pointer-chasing tree nodes and
//! every filter cloned the full structure. At `rajaperfd` corpus scale
//! (10⁵–10⁶ profiles) that is the analysis bottleneck, so this module stores
//! the dataframe the way an analytical engine does:
//!
//! * one **row index**: `(node, profile)` pairs sorted node-major (node
//!   ascending, then profile ascending), deduplicated;
//! * per-column **dense value vectors** aligned to the row index, paired
//!   with a **validity bitmap** (a row a column never observed is invalid,
//!   not absent — the row exists because *some* column observed it);
//! * `node_starts` offsets so "all rows of node n" is a contiguous slice.
//!
//! Appends do not disturb the sorted index: they land in a small row-major
//! **pending chunk** that [`Frame::compact`] merges in sorted order. The
//! compaction trigger is geometric (pending ≥ half the base), so streaming
//! N profiles costs O(N) amortized merge work instead of O(N²) re-sorts.
//!
//! Duplicate `(node, profile)` cells keep the *last* appended valid value
//! per column, reproducing the `BTreeMap::insert` overwrite semantics of
//! the row engine.
//!
//! Parallel scans go through the vendored `rayon` pool with the per-chunk
//! combine discipline used elsewhere in the workspace: chunk results are
//! collected in chunk order, so outputs are bitwise-identical for any
//! `RAYON_NUM_THREADS`.

use rayon::IntoParallelIterator;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Row identity: `(node id, profile id)`. `u32` halves index memory versus
/// `usize`; 2³² nodes or profiles is far beyond any corpus we model, and
/// the conversions assert rather than wrap.
pub(crate) type Row = (u32, u32);

/// Compact once pending reaches this many rows, even on small bases.
const PENDING_MIN_ROWS: usize = 4096;

/// Validity bitmap: one bit per row position of the owning column.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub(crate) struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    pub(crate) fn get(&self, i: usize) -> bool {
        (self.words[i >> 6] >> (i & 63)) & 1 == 1
    }

    pub(crate) fn push(&mut self, v: bool) {
        if self.len & 63 == 0 {
            self.words.push(0);
        }
        if v {
            *self.words.last_mut().expect("word pushed above") |= 1 << (self.len & 63);
        }
        self.len += 1;
    }

    pub(crate) fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// One metric column: values dense over the owning frame's row index (or a
/// prefix of it, in the pending chunk), plus validity.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub(crate) struct Column {
    pub(crate) values: Vec<f64>,
    pub(crate) valid: Bitmap,
}

impl Column {
    /// The value at row position `i`, if observed. Positions past the
    /// column's end (possible only in the pending chunk, where columns grow
    /// lazily) read as unobserved.
    pub(crate) fn get(&self, i: usize) -> Option<f64> {
        if i < self.values.len() && self.valid.get(i) {
            Some(self.values[i])
        } else {
            None
        }
    }

    fn pad_to(&mut self, n: usize) {
        while self.values.len() < n {
            self.values.push(f64::NAN);
            self.valid.push(false);
        }
    }

    fn push_valid(&mut self, v: f64) {
        self.values.push(v);
        self.valid.push(true);
    }

    fn push_invalid(&mut self) {
        self.values.push(f64::NAN);
        self.valid.push(false);
    }

    pub(crate) fn observed(&self) -> usize {
        self.valid.count_ones()
    }
}

/// Unsorted appends awaiting compaction. Rows are in append order; columns
/// are dense over the row positions they have reached (shorter tails read
/// as unobserved).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct Pending {
    rows: Vec<Row>,
    columns: BTreeMap<String, Column>,
}

/// The columnar performance dataframe.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Frame {
    /// Sorted node-major row index, deduplicated.
    index: Vec<Row>,
    /// `node_starts[n]..node_starts[n+1]` is node `n`'s slice of `index`.
    /// Rebuilt by [`Frame::compact`]; reads fall back to binary search when
    /// a node id postdates the last compaction.
    node_starts: Vec<usize>,
    /// Metric columns aligned to `index`.
    columns: BTreeMap<String, Column>,
    pending: Pending,
}

impl Frame {
    // ------------------------------------------------------------- writes

    /// Append one record's metrics at `(node, profile)`. Records with no
    /// metrics create no row (the row engine likewise only materialized
    /// rows through column entries).
    pub(crate) fn append(&mut self, node: u32, profile: u32, metrics: &BTreeMap<String, f64>) {
        if metrics.is_empty() {
            return;
        }
        let pos = self.pending.rows.len();
        self.pending.rows.push((node, profile));
        for (name, &v) in metrics {
            if !self.pending.columns.contains_key(name) {
                self.pending.columns.insert(name.clone(), Column::default());
            }
            let col = self.pending.columns.get_mut(name).expect("inserted above");
            col.pad_to(pos);
            col.push_valid(v);
        }
    }

    /// Bulk-append another (compacted) frame with node/profile ids remapped.
    /// `prof_map` must cover every profile id in `other`.
    pub(crate) fn append_frame(
        &mut self,
        other: &Frame,
        node_map: &[u32],
        prof_map: &std::collections::HashMap<u32, u32>,
    ) {
        debug_assert!(other.pending.rows.is_empty(), "append_frame takes compacted input");
        let offset = self.pending.rows.len();
        for &(n, p) in &other.index {
            self.pending
                .rows
                .push((node_map[n as usize], prof_map[&p]));
        }
        for (name, col) in &other.columns {
            if !self.pending.columns.contains_key(name) {
                self.pending.columns.insert(name.clone(), Column::default());
            }
            let dst = self.pending.columns.get_mut(name).expect("inserted above");
            dst.pad_to(offset);
            for i in 0..other.index.len() {
                match col.get(i) {
                    Some(v) => dst.push_valid(v),
                    None => dst.push_invalid(),
                }
            }
        }
    }

    /// True when enough appends have accumulated to justify a merge. The
    /// geometric trigger keeps total compaction work linear in the stream.
    pub(crate) fn should_compact(&self) -> bool {
        self.pending.rows.len() >= PENDING_MIN_ROWS
            && self.pending.rows.len() >= self.index.len() / 2
    }

    /// True when there are no uncompacted appends.
    pub(crate) fn pending_is_empty(&self) -> bool {
        self.pending.rows.is_empty()
    }

    /// Merge the pending chunk into the sorted base and rebuild
    /// `node_starts` for `nnodes` nodes. Idempotent; cheap when pending is
    /// empty and `node_starts` is current.
    pub(crate) fn compact(&mut self, nnodes: usize) {
        if self.pending.rows.is_empty() {
            if self.node_starts.len() != nnodes + 1 {
                self.rebuild_node_starts(nnodes);
            }
            return;
        }
        // Pending positions sorted by (row, append position): a stable key
        // so the LAST append to a duplicated cell wins per column.
        let mut porder: Vec<u32> = (0..self.pending.rows.len() as u32).collect();
        porder.sort_unstable_by_key(|&p| (self.pending.rows[p as usize], p));

        // Merge plan: one entry per output row — the base position (or
        // `NO_BASE`) plus the run of pending positions (`porder[ps..pe]`)
        // that lands on that row.
        const NO_BASE: u32 = u32::MAX;
        let mut plan: Vec<(u32, u32, u32)> = Vec::with_capacity(self.index.len() + porder.len());
        let mut new_index: Vec<Row> = Vec::with_capacity(self.index.len() + porder.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.index.len() || j < porder.len() {
            let take_base = j >= porder.len()
                || (i < self.index.len()
                    && self.index[i] <= self.pending.rows[porder[j] as usize]);
            let row = if take_base {
                self.index[i]
            } else {
                self.pending.rows[porder[j] as usize]
            };
            let ps = j;
            while j < porder.len() && self.pending.rows[porder[j] as usize] == row {
                j += 1;
            }
            let base = if take_base {
                assert!(i < NO_BASE as usize, "frame exceeds u32 row positions");
                i as u32
            } else {
                NO_BASE
            };
            if take_base {
                i += 1;
            }
            plan.push((base, ps as u32, j as u32));
            new_index.push(row);
        }

        let names: Vec<String> = {
            let mut v: Vec<String> = self.columns.keys().cloned().collect();
            v.extend(self.pending.columns.keys().cloned());
            v.sort();
            v.dedup();
            v
        };
        let mut new_columns = BTreeMap::new();
        for name in names {
            let bcol = self.columns.get(&name);
            let pcol = self.pending.columns.get(&name);
            let mut col = Column::default();
            for &(base, ps, pe) in &plan {
                // Latest valid pending write wins; otherwise the base value.
                let mut chosen: Option<f64> = None;
                if let Some(pc) = pcol {
                    for jj in (ps..pe).rev() {
                        if let Some(v) = pc.get(porder[jj as usize] as usize) {
                            chosen = Some(v);
                            break;
                        }
                    }
                }
                if chosen.is_none() && base != NO_BASE {
                    if let Some(bc) = bcol {
                        chosen = bc.get(base as usize);
                    }
                }
                match chosen {
                    Some(v) => col.push_valid(v),
                    None => col.push_invalid(),
                }
            }
            new_columns.insert(name, col);
        }

        self.index = new_index;
        self.columns = new_columns;
        self.pending = Pending::default();
        self.rebuild_node_starts(nnodes);
    }

    fn rebuild_node_starts(&mut self, nnodes: usize) {
        let mut starts = vec![0usize; nnodes + 1];
        for &(n, _) in &self.index {
            starts[n as usize + 1] += 1;
        }
        for k in 0..nnodes {
            starts[k + 1] += starts[k];
        }
        self.node_starts = starts;
    }

    /// A compacted view of this frame: borrowed when there is nothing
    /// pending, otherwise a compacted clone. Bulk read paths use this so
    /// their scans see only the sorted base.
    pub(crate) fn compacted(&self, nnodes: usize) -> std::borrow::Cow<'_, Frame> {
        if self.pending_is_empty() && self.node_starts.len() == nnodes + 1 {
            std::borrow::Cow::Borrowed(self)
        } else {
            let mut f = self.clone();
            f.compact(nnodes);
            std::borrow::Cow::Owned(f)
        }
    }

    // -------------------------------------------------------------- reads

    pub(crate) fn rows(&self) -> &[Row] {
        &self.index
    }

    pub(crate) fn columns(&self) -> &BTreeMap<String, Column> {
        &self.columns
    }

    /// Sorted union of base and pending column names.
    pub(crate) fn column_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.columns.keys().map(String::as_str).collect();
        if !self.pending.columns.is_empty() {
            names.extend(self.pending.columns.keys().map(String::as_str));
            names.sort_unstable();
            names.dedup();
        }
        names
    }

    /// Node `n`'s contiguous range of base-index positions.
    pub(crate) fn node_range(&self, node: u32) -> std::ops::Range<usize> {
        let n = node as usize;
        if n + 1 < self.node_starts.len() {
            self.node_starts[n]..self.node_starts[n + 1]
        } else {
            // Node created after the last compaction: its rows (if any) are
            // still findable by binary search.
            let s = self.index.partition_point(|r| r.0 < node);
            let e = s + self.index[s..].partition_point(|r| r.0 <= node);
            s..e
        }
    }

    /// The cell value at `(node, profile)`, honoring pending overwrites.
    pub(crate) fn value(&self, column: &str, node: u32, profile: u32) -> Option<f64> {
        if !self.pending.rows.is_empty() {
            if let Some(pc) = self.pending.columns.get(column) {
                for (pos, &row) in self.pending.rows.iter().enumerate().rev() {
                    if row == (node, profile) {
                        if let Some(v) = pc.get(pos) {
                            return Some(v);
                        }
                    }
                }
            }
        }
        let col = self.columns.get(column)?;
        let r = self.node_range(node);
        let off = self.index[r.clone()].partition_point(|row| row.1 < profile);
        let pos = r.start + off;
        if pos < r.end && self.index[pos].1 == profile {
            col.get(pos)
        } else {
            None
        }
    }

    /// All observed `(profile, value)` pairs of `column` at `node`, profile
    /// ascending, honoring pending overwrites.
    pub(crate) fn node_values(&self, column: &str, node: u32) -> Vec<(u32, f64)> {
        let mut out: Vec<(u32, f64)> = Vec::new();
        if let Some(col) = self.columns.get(column) {
            for i in self.node_range(node) {
                if let Some(v) = col.get(i) {
                    out.push((self.index[i].1, v));
                }
            }
        }
        if !self.pending.rows.is_empty() {
            if let Some(pc) = self.pending.columns.get(column) {
                // Forward order: later appends overwrite earlier/base ones.
                for (pos, &(n, p)) in self.pending.rows.iter().enumerate() {
                    if n != node {
                        continue;
                    }
                    if let Some(v) = pc.get(pos) {
                        match out.binary_search_by_key(&p, |e| e.0) {
                            Ok(k) => out[k].1 = v,
                            Err(k) => out.insert(k, (p, v)),
                        }
                    }
                }
            }
        }
        out
    }

    /// Observed values of `column` over node `n`'s base slice (no pending;
    /// callers compact first). The allocation-free hot path under `stats`.
    pub(crate) fn node_column_values(&self, column: &str, node: u32) -> Vec<f64> {
        let Some(col) = self.columns.get(column) else {
            return Vec::new();
        };
        self.node_range(node)
            .filter_map(|i| col.get(i))
            .collect()
    }

    // --------------------------------------------------------- selections

    /// Sub-frame of rows whose profile satisfies `keep` (indexed by profile
    /// id). Requires a compacted frame; the output is compacted. Columns
    /// left with no observed value are dropped, matching the row engine's
    /// filter semantics. The row scan and per-column gathers are chunk
    /// parallel with deterministic chunk-ordered concatenation.
    pub(crate) fn select_profiles(&self, keep: &[bool], nnodes: usize) -> Frame {
        debug_assert!(self.pending.rows.is_empty());
        let keep_pos = par_filter_positions(self.index.len(), |i| {
            let p = self.index[i].1 as usize;
            p < keep.len() && keep[p]
        });
        let index: Vec<Row> = keep_pos.iter().map(|&i| self.index[i]).collect();
        self.gathered(index, &keep_pos, nnodes)
    }

    /// Sub-frame of rows whose node remaps (`remap[node] = Some(new id)`).
    /// `remap` must be monotone over kept nodes so node-major order is
    /// preserved. Requires a compacted frame; the output is compacted.
    pub(crate) fn select_nodes(&self, remap: &[Option<u32>], new_nnodes: usize) -> Frame {
        debug_assert!(self.pending.rows.is_empty());
        let keep_pos = par_filter_positions(self.index.len(), |i| {
            remap[self.index[i].0 as usize].is_some()
        });
        let index: Vec<Row> = keep_pos
            .iter()
            .map(|&i| {
                let (n, p) = self.index[i];
                (remap[n as usize].expect("kept position"), p)
            })
            .collect();
        self.gathered(index, &keep_pos, new_nnodes)
    }

    /// Assemble a frame from a pre-remapped `index` plus the base positions
    /// each row was taken from. Column gathers run chunk-parallel.
    fn gathered(&self, index: Vec<Row>, keep_pos: &[usize], nnodes: usize) -> Frame {
        let names: Vec<&String> = self.columns.keys().collect();
        let gathered: Vec<Column> = (0..names.len())
            .into_par_iter()
            .map(|c| {
                let src = &self.columns[names[c]];
                let mut col = Column::default();
                for &i in keep_pos {
                    match src.get(i) {
                        Some(v) => col.push_valid(v),
                        None => col.push_invalid(),
                    }
                }
                col
            })
            .collect();
        let mut columns = BTreeMap::new();
        for (name, col) in names.into_iter().zip(gathered) {
            if col.observed() > 0 {
                columns.insert(name.clone(), col);
            }
        }
        let mut f = Frame {
            index,
            node_starts: Vec::new(),
            columns,
            pending: Pending::default(),
        };
        f.rebuild_node_starts(nnodes);
        f
    }

    /// Construct directly from parts (the `.tkt` reader).
    pub(crate) fn from_parts(
        index: Vec<Row>,
        columns: BTreeMap<String, Column>,
        nnodes: usize,
    ) -> Frame {
        let mut f = Frame {
            index,
            node_starts: Vec::new(),
            columns,
            pending: Pending::default(),
        };
        f.rebuild_node_starts(nnodes);
        f
    }
}

/// Positions `i in 0..n` satisfying `pred`, ascending. Chunk-parallel:
/// each chunk filters its sub-range locally and the per-chunk hit lists
/// are concatenated in chunk order, so the result is independent of the
/// pool width.
fn par_filter_positions(n: usize, pred: impl Fn(usize) -> bool + Sync) -> Vec<usize> {
    const CHUNK: usize = 64 * 1024;
    if n <= CHUNK {
        return (0..n).filter(|&i| pred(i)).collect();
    }
    let nchunks = n.div_ceil(CHUNK);
    let parts: Vec<Vec<usize>> = (0..nchunks)
        .into_par_iter()
        .map(|c| {
            (c * CHUNK..((c + 1) * CHUNK).min(n))
                .filter(|&i| pred(i))
                .collect()
        })
        .collect();
    parts.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn append_then_compact_sorts_node_major() {
        let mut f = Frame::default();
        f.append(2, 0, &metrics(&[("t", 1.0)]));
        f.append(0, 1, &metrics(&[("t", 2.0)]));
        f.append(0, 0, &metrics(&[("t", 3.0)]));
        f.compact(3);
        assert_eq!(f.rows(), &[(0, 0), (0, 1), (2, 0)]);
        assert_eq!(f.value("t", 0, 0), Some(3.0));
        assert_eq!(f.value("t", 2, 0), Some(1.0));
        assert_eq!(f.node_range(1), 2..2, "empty node range");
    }

    #[test]
    fn duplicate_cell_last_write_wins_per_column() {
        let mut f = Frame::default();
        f.append(0, 0, &metrics(&[("a", 1.0), ("b", 10.0)]));
        f.append(0, 0, &metrics(&[("a", 2.0)]));
        // Pre-compaction reads already see the overwrite...
        assert_eq!(f.value("a", 0, 0), Some(2.0));
        assert_eq!(f.value("b", 0, 0), Some(10.0), "b not overwritten");
        f.compact(1);
        // ...and compaction preserves it.
        assert_eq!(f.rows().len(), 1);
        assert_eq!(f.value("a", 0, 0), Some(2.0));
        assert_eq!(f.value("b", 0, 0), Some(10.0));
    }

    #[test]
    fn pending_reads_match_compacted_reads() {
        let mut f = Frame::default();
        f.append(1, 3, &metrics(&[("t", 1.0)]));
        f.append(1, 1, &metrics(&[("t", 2.0)]));
        f.append(0, 2, &metrics(&[("u", 9.0)]));
        let before = f.node_values("t", 1);
        f.compact(2);
        assert_eq!(before, f.node_values("t", 1));
        assert_eq!(before, vec![(1, 2.0), (3, 1.0)], "profile ascending");
    }

    #[test]
    fn select_profiles_drops_empty_columns() {
        let mut f = Frame::default();
        f.append(0, 0, &metrics(&[("only0", 1.0)]));
        f.append(0, 1, &metrics(&[("only1", 2.0)]));
        f.compact(1);
        let keep = vec![true, false];
        let g = f.select_profiles(&keep, 1);
        assert_eq!(g.rows(), &[(0, 0)]);
        assert!(g.columns().contains_key("only0"));
        assert!(!g.columns().contains_key("only1"), "empty column dropped");
    }

    #[test]
    fn geometric_trigger_scales_with_base() {
        let mut f = Frame::default();
        for i in 0..PENDING_MIN_ROWS as u32 {
            f.append(0, i, &metrics(&[("t", 1.0)]));
        }
        assert!(f.should_compact());
        f.compact(1);
        f.append(0, 0, &metrics(&[("t", 2.0)]));
        assert!(!f.should_compact(), "small pending over a large base waits");
    }
}
