//! Thicket-style exploratory data analysis for multi-run performance data.
//!
//! [Thicket](https://github.com/llnl/thicket) is LLNL's Python toolkit for
//! composing and analyzing performance profiles from many runs. Its data
//! model has three components (paper §II-D): a *performance dataframe* of
//! metrics indexed by (call-tree node, profile); a *metadata table* of
//! per-run build/execution context; and a *statsframe* of aggregated
//! statistics per node. This crate reproduces that model over the profiles
//! our `caliper` crate writes:
//!
//! * [`Thicket::from_profiles`] — the `from_caliperreader` equivalent:
//!   ingest many profiles, merging their call trees.
//! * [`Thicket::concat`] — `concat_thickets`: compose thickets from
//!   different runs/configurations into one.
//! * [`Thicket::filter_metadata`] / [`Thicket::groupby`] — select or
//!   partition profiles by metadata (e.g. by `variant` and `tuning`, as the
//!   paper's analysis does).
//! * [`Thicket::stats`] — aggregate a metric across profiles per node
//!   (mean/median/std/min/max) into the statsframe.
//! * [`Thicket::tree`] — text rendering of the call tree annotated with a
//!   metric, Thicket/Hatchet's `tree()`.
//!
//! The performance dataframe is stored **columnar** (see [`columnar`]'s
//! module docs): a single sorted node-major row index shared by dense
//! per-column value vectors with validity bitmaps. Aggregations are
//! contiguous per-node slice scans parallelized over the vendored `rayon`
//! pool with deterministic chunk-ordered combines, selections are
//! profile-mask gathers, and [`Thicket::ingest`] appends to a pending chunk
//! that is compacted geometrically — so corpora of 10⁵–10⁶ profiles (the
//! `rajaperfd` store scale) stay interactive. [`Thicket::write_tkt`] /
//! [`Thicket::read_tkt`] persist the composed dataframe in a chunked binary
//! format so a corpus is parsed from Caliper JSON once, not per query.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

mod columnar;
mod features;
mod tkt;

use columnar::Frame;
use rayon::IntoParallelIterator;

pub use features::{kernel_family_features, FeatureMatrix};

/// Version tag of the analysis engine, for cache keys that must not serve
/// results computed by a different engine (e.g. `rajaperfd`'s analyze
/// cache). Bump on any change that can alter analysis output.
pub const ENGINE_VERSION: &str = "columnar-1";

/// Group label under which [`Thicket::groupby`] collects profiles whose
/// metadata lacks the grouping key (they are partitioned, not dropped).
pub const MISSING_GROUP: &str = "(missing)";

/// A node of the unified call graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Full call path from the root.
    pub path: Vec<String>,
}

impl Node {
    /// The node's own (leaf) name.
    pub fn name(&self) -> &str {
        self.path.last().map(String::as_str).unwrap_or("")
    }
}

/// Row identity in the performance dataframe: (node, profile).
pub type RowKey = (usize, usize);

/// The Thicket: call graph + performance dataframe + metadata + statsframe.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Thicket {
    /// Unified call-graph nodes; `node id` = index.
    pub nodes: Vec<Node>,
    /// Profile ids, in ingestion order (always ascending: ids are allocated
    /// `max + 1` and filters keep subsequences).
    pub profiles: Vec<usize>,
    /// The columnar performance dataframe (metric columns over the sorted
    /// `(node, profile)` row index).
    frame: Frame,
    /// Per-profile metadata (from profile globals): profile → key → value.
    /// Each record is behind an `Arc` so selections (`groupby`, filters,
    /// clones) share it instead of deep-copying — at corpus scale the
    /// metadata copy, not the frame gather, dominated selection cost.
    pub metadata: BTreeMap<usize, Arc<BTreeMap<String, serde_json::Value>>>,
    /// Aggregated statistics per node: column → node → value. Filled by
    /// [`Thicket::stats`].
    pub statsframe: BTreeMap<String, BTreeMap<usize, f64>>,
}

/// Statistics produced by [`Thicket::stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Stat {
    /// Arithmetic mean.
    Mean,
    /// Median (average of middle two for even counts).
    Median,
    /// Population standard deviation.
    Std,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Linear-interpolated percentile, `0.0..=1.0` (Thicket exposes
    /// quartiles through its `calc_*_columns` helpers).
    Percentile(f64),
}

impl Stat {
    fn name(&self) -> String {
        match self {
            Stat::Mean => "mean".to_string(),
            Stat::Median => "median".to_string(),
            Stat::Std => "std".to_string(),
            Stat::Min => "min".to_string(),
            Stat::Max => "max".to_string(),
            Stat::Percentile(q) => format!("p{:02.0}", q * 100.0),
        }
    }

    fn apply(&self, values: &mut Vec<f64>) -> f64 {
        if values.is_empty() {
            return f64::NAN;
        }
        match self {
            Stat::Mean => values.iter().sum::<f64>() / values.len() as f64,
            Stat::Median => Stat::Percentile(0.5).apply(values),
            Stat::Std => {
                let mean = values.iter().sum::<f64>() / values.len() as f64;
                (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64)
                    .sqrt()
            }
            Stat::Min => values.iter().cloned().fold(f64::INFINITY, f64::min),
            Stat::Max => values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            Stat::Percentile(q) => {
                values.sort_by(f64::total_cmp);
                let q = q.clamp(0.0, 1.0);
                let pos = q * (values.len() - 1) as f64;
                let lo = pos.floor() as usize;
                let hi = pos.ceil() as usize;
                if lo == hi {
                    values[lo]
                } else {
                    let frac = pos - lo as f64;
                    values[lo] * (1.0 - frac) + values[hi] * frac
                }
            }
        }
    }
}

/// Minimal profile shape consumed by [`Thicket::from_profiles`]; matches
/// `caliper::Profile` structurally (kept independent so `thicket` does not
/// depend on `caliper`, mirroring Thicket reading `.cali` files on disk).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProfileData {
    /// Run metadata.
    pub globals: BTreeMap<String, serde_json::Value>,
    /// (call path, metric columns) records.
    pub records: Vec<(Vec<String>, BTreeMap<String, f64>)>,
}

impl ProfileData {
    /// Parse a caliper-JSON profile (`{"globals": .., "records": [{"path":
    /// .., "metrics": ..}]}`).
    pub fn from_caliper_json(text: &str) -> Result<ProfileData, serde_json::Error> {
        #[derive(Deserialize)]
        struct Rec {
            path: Vec<String>,
            metrics: BTreeMap<String, f64>,
        }
        #[derive(Deserialize)]
        struct Prof {
            globals: BTreeMap<String, serde_json::Value>,
            records: Vec<Rec>,
        }
        let p: Prof = serde_json::from_str(text)?;
        Ok(ProfileData {
            globals: p.globals,
            records: p.records.into_iter().map(|r| (r.path, r.metrics)).collect(),
        })
    }

    /// Read a caliper-JSON profile file.
    ///
    /// A truncated, torn, or non-JSON file returns a descriptive
    /// `InvalidData` error naming the file and the byte offset where
    /// parsing failed (the parser embeds `at byte N` in its messages) —
    /// never a panic. Campaign ingestion ([`Thicket::from_files`]) relies
    /// on this to skip corrupt cells instead of dying on them.
    pub fn read_file(path: &std::path::Path) -> std::io::Result<ProfileData> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| std::io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
        Self::from_caliper_json(&text).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}: malformed profile: {e}", path.display()),
            )
        })
    }
}

/// What [`Thicket::from_files`] skipped: one `(path, reason)` pair per
/// unreadable or malformed profile, so campaign tooling can report — and
/// re-run — exactly the cells that were lost.
#[derive(Debug, Clone, Default)]
pub struct IngestStats {
    /// Files ingested successfully.
    pub ingested: usize,
    /// Files skipped, with the error that disqualified each.
    pub skipped: Vec<(std::path::PathBuf, String)>,
}

impl IngestStats {
    /// Number of files skipped (the warning count).
    pub fn warnings(&self) -> usize {
        self.skipped.len()
    }
}

/// Transient path → node-id index used by the bulk ingestion paths. Built
/// once per bulk operation (O(nodes)) so node lookups are hashed instead of
/// linear — concatenating sweep-sized thickets was O(nodes²·columns) with
/// the old per-record scan. Not stored on [`Thicket`]: the struct is plain
/// serializable data, and an index field would leak into its JSON form.
type PathIndex = std::collections::HashMap<Vec<String>, usize>;

/// Narrow a node/profile id into the frame's `u32` row space.
pub(crate) fn id32(id: usize) -> u32 {
    u32::try_from(id).expect("thicket node/profile ids exceed the u32 row space")
}

/// A streaming ingestion session: wraps a [`Thicket`] with the transient
/// path index so per-profile ingest is O(records), not O(nodes) re-indexing
/// per call. This is the corpus entry point — `rajaperfd` analyze requests
/// and [`Thicket::from_files`] feed profiles through one of these as they
/// arrive, and [`IngestSession::finish`] compacts the result.
pub struct IngestSession {
    thicket: Thicket,
    index: PathIndex,
}

impl IngestSession {
    /// Start from an empty thicket.
    pub fn new() -> IngestSession {
        IngestSession::from_thicket(Thicket::default())
    }

    /// Resume ingestion into an existing thicket (e.g. one reopened from a
    /// `.tkt` file).
    pub fn from_thicket(thicket: Thicket) -> IngestSession {
        let index = thicket.build_path_index();
        IngestSession { thicket, index }
    }

    /// Ingest one profile.
    pub fn ingest(&mut self, p: &ProfileData) {
        self.thicket.ingest_indexed(&mut self.index, p);
    }

    /// Profiles ingested so far (including any the session started with).
    pub fn len(&self) -> usize {
        self.thicket.profiles.len()
    }

    /// True when no profiles have been ingested.
    pub fn is_empty(&self) -> bool {
        self.thicket.profiles.is_empty()
    }

    /// The thicket under construction (reads see all ingested data; bulk
    /// scans are cheaper after [`IngestSession::finish`]).
    pub fn thicket(&self) -> &Thicket {
        &self.thicket
    }

    /// Compact and return the thicket.
    pub fn finish(mut self) -> Thicket {
        let nnodes = self.thicket.nodes.len();
        self.thicket.frame.compact(nnodes);
        self.thicket
    }
}

impl Default for IngestSession {
    fn default() -> Self {
        Self::new()
    }
}

impl Thicket {
    /// Ingest profiles, unioning their call trees. Each profile gets the
    /// next free profile id.
    pub fn from_profiles(profiles: &[ProfileData]) -> Thicket {
        let mut s = IngestSession::new();
        for p in profiles {
            s.ingest(p);
        }
        s.finish()
    }

    /// Ingest profile files, skipping (not dying on) any that are
    /// unreadable or malformed — the fault-tolerant entry point for
    /// campaign-scale analysis, where a sweep directory may contain
    /// quarantined or torn cells. Returns the thicket built from the intact
    /// files plus an [`IngestStats`] listing every skipped file and why.
    pub fn from_files<P: AsRef<std::path::Path>>(paths: &[P]) -> (Thicket, IngestStats) {
        let mut s = IngestSession::new();
        let mut stats = IngestStats::default();
        for p in paths {
            let p = p.as_ref();
            match ProfileData::read_file(p) {
                Ok(data) => {
                    s.ingest(&data);
                    stats.ingested += 1;
                }
                Err(e) => stats.skipped.push((p.to_path_buf(), e.to_string())),
            }
        }
        (s.finish(), stats)
    }

    /// Add one profile to this thicket. Appends land in the frame's pending
    /// chunk; compaction is amortized (geometric trigger), so calling this
    /// in a loop streams N profiles in O(N) total merge work. For long
    /// sessions prefer [`IngestSession`], which also amortizes the path
    /// index.
    pub fn ingest(&mut self, p: &ProfileData) {
        let mut index = self.build_path_index();
        self.ingest_indexed(&mut index, p);
    }

    fn ingest_indexed(&mut self, index: &mut PathIndex, p: &ProfileData) {
        let pid = self.next_profile_id();
        self.profiles.push(pid);
        self.metadata.insert(pid, Arc::new(p.globals.clone()));
        let pid = id32(pid);
        for (path, metrics) in &p.records {
            let nid = id32(self.node_id_or_insert(index, path));
            self.frame.append(nid, pid, metrics);
        }
        if self.frame.should_compact() {
            self.frame.compact(self.nodes.len());
        }
    }

    /// Smallest unused profile id. `last + 1`, not `len`: ids stay unique
    /// even after [`Thicket::filter_metadata`] leaves the set non-contiguous.
    /// Every constructor appends ids in ascending order and every filter
    /// keeps a subsequence, so the last element is the max — asserted in
    /// debug builds because streaming ingest calls this once per profile
    /// and an O(n) max-scan here made ingest quadratic.
    fn next_profile_id(&self) -> usize {
        debug_assert!(self.profiles.windows(2).all(|w| w[0] < w[1]));
        self.profiles.last().map_or(0, |m| m + 1)
    }

    /// Index the current node set by path.
    fn build_path_index(&self) -> PathIndex {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.path.clone(), i))
            .collect()
    }

    fn node_id_or_insert(&mut self, index: &mut PathIndex, path: &[String]) -> usize {
        if let Some(&i) = index.get(path) {
            return i;
        }
        let id = self.nodes.len();
        self.nodes.push(Node {
            path: path.to_vec(),
        });
        index.insert(path.to_vec(), id);
        id
    }

    /// A fully-compacted view of the frame: borrowed when nothing is
    /// pending, else a compacted clone. Bulk scans use this so they only
    /// ever walk the sorted base.
    pub(crate) fn frame_view(&self) -> std::borrow::Cow<'_, Frame> {
        self.frame.compacted(self.nodes.len())
    }

    /// Construct from parts (the `.tkt` reader).
    pub(crate) fn from_parts(
        nodes: Vec<Node>,
        profiles: Vec<usize>,
        frame: Frame,
        metadata: BTreeMap<usize, Arc<BTreeMap<String, serde_json::Value>>>,
        statsframe: BTreeMap<String, BTreeMap<usize, f64>>,
    ) -> Thicket {
        Thicket {
            nodes,
            profiles,
            frame,
            metadata,
            statsframe,
        }
    }

    /// Node id of a call path, if present.
    pub fn node_id(&self, path: &[&str]) -> Option<usize> {
        self.nodes.iter().position(|n| {
            n.path.len() == path.len() && n.path.iter().zip(path).all(|(a, b)| a == b)
        })
    }

    /// Node id by leaf name (first match).
    pub fn node_by_name(&self, name: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.name() == name)
    }

    /// Metric value at (node, profile).
    pub fn value(&self, column: &str, node: usize, profile: usize) -> Option<f64> {
        let (n, p) = (u32::try_from(node).ok()?, u32::try_from(profile).ok()?);
        self.frame.value(column, n, p)
    }

    /// All values of `column` at `node` across profiles (profile order).
    pub fn node_values(&self, column: &str, node: usize) -> Vec<(usize, f64)> {
        let Ok(n) = u32::try_from(node) else {
            return Vec::new();
        };
        self.frame
            .node_values(column, n)
            .into_iter()
            .map(|(p, v)| (p as usize, v))
            .collect()
    }

    /// Compose thickets into one (Thicket's `concat_thickets`): profiles are
    /// renumbered; call trees are unioned. Linear in the total data volume:
    /// node ids map through a per-thicket vector and each input frame is
    /// bulk-appended column-by-column, then everything is merge-sorted once.
    pub fn concat(thickets: &[Thicket]) -> Thicket {
        let mut out = Thicket::default();
        let mut index = PathIndex::new();
        for t in thickets {
            // This thicket's node id → out's node id (node id = index).
            let node_map: Vec<u32> = t
                .nodes
                .iter()
                .map(|n| id32(out.node_id_or_insert(&mut index, &n.path)))
                .collect();
            let mut prof_map: std::collections::HashMap<u32, u32> =
                std::collections::HashMap::with_capacity(t.profiles.len());
            for (next_pid, &pid) in (out.next_profile_id()..).zip(t.profiles.iter()) {
                out.profiles.push(next_pid);
                if let Some(md) = t.metadata.get(&pid) {
                    out.metadata.insert(next_pid, md.clone());
                }
                prof_map.insert(id32(pid), id32(next_pid));
            }
            let fv = t.frame_view();
            out.frame.append_frame(&fv, &node_map, &prof_map);
        }
        out.frame.compact(out.nodes.len());
        out
    }

    /// Keep only profiles whose metadata satisfies `pred` (Thicket's
    /// `filter_metadata`). Node set is preserved; orphaned values dropped.
    /// Profiles without a metadata record are dropped (use
    /// [`Thicket::groupby`] to partition those under [`MISSING_GROUP`]).
    pub fn filter_metadata(
        &self,
        pred: impl Fn(&BTreeMap<String, serde_json::Value>) -> bool,
    ) -> Thicket {
        let keep: Vec<usize> = self
            .profiles
            .iter()
            .copied()
            .filter(|p| self.metadata.get(p).map(|md| pred(md)).unwrap_or(false))
            .collect();
        self.select_profiles(&keep)
    }

    /// Sub-thicket of the given profile ids (ascending). The frame gather
    /// is a chunk-parallel profile-mask selection.
    fn select_profiles(&self, keep: &[usize]) -> Thicket {
        let mask_len = self.profiles.iter().copied().max().map_or(0, |m| m + 1);
        let mut mask = vec![false; mask_len];
        for &p in keep {
            mask[p] = true;
        }
        let fv = self.frame_view();
        let frame = fv.select_profiles(&mask, self.nodes.len());
        let mut metadata = BTreeMap::new();
        for &p in keep {
            if let Some(md) = self.metadata.get(&p) {
                metadata.insert(p, md.clone());
            }
        }
        Thicket {
            nodes: self.nodes.clone(),
            profiles: keep.to_vec(),
            frame,
            metadata,
            statsframe: BTreeMap::new(),
        }
    }

    /// Partition profiles by the string value of a metadata key (Thicket's
    /// `groupby`). Profiles whose metadata lacks the key are grouped under
    /// [`MISSING_GROUP`] — every profile lands in exactly one group. Groups
    /// are returned in sorted key order.
    pub fn groupby(&self, key: &str) -> Vec<(String, Thicket)> {
        let mut parts: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for &p in &self.profiles {
            let label = self
                .metadata
                .get(&p)
                .and_then(|md| md.get(key))
                .map(json_to_string)
                .unwrap_or_else(|| MISSING_GROUP.to_string());
            parts.entry(label).or_default().push(p);
        }
        parts
            .into_iter()
            .map(|(label, pids)| {
                let group = self.select_profiles(&pids);
                (label, group)
            })
            .collect()
    }

    /// Aggregate `column` across profiles for every node, storing the result
    /// in the statsframe as `"<column>_<stat>"` and returning the column
    /// name. NaN is stored for nodes with no observations. Nodes are
    /// aggregated in parallel over the rayon pool; each node's values are
    /// reduced sequentially in profile order and results are collected in
    /// node order, so the statsframe is bitwise-identical for any
    /// `RAYON_NUM_THREADS`.
    pub fn stats(&mut self, column: &str, stat: Stat) -> String {
        self.frame.compact(self.nodes.len());
        let out_name = format!("{column}_{}", stat.name());
        let nnodes = self.nodes.len();
        let frame = &self.frame;
        let vals: Vec<f64> = (0..nnodes)
            .into_par_iter()
            .map(|nid| {
                let mut vs = frame.node_column_values(column, id32(nid));
                stat.apply(&mut vs)
            })
            .collect();
        self.statsframe
            .insert(out_name.clone(), vals.into_iter().enumerate().collect());
        out_name
    }

    /// A statsframe value.
    pub fn stat_value(&self, stat_column: &str, node: usize) -> Option<f64> {
        self.statsframe.get(stat_column)?.get(&node).copied()
    }

    /// Render the call tree annotated with a metric column's mean across
    /// profiles (Hatchet/Thicket `tree()`).
    pub fn tree(&self, column: &str) -> String {
        let f = self.frame_view();
        // Order nodes by path for a stable depth-first-looking listing.
        let mut order: Vec<usize> = (0..self.nodes.len()).collect();
        order.sort_by(|&a, &b| self.nodes[a].path.cmp(&self.nodes[b].path));
        let mut out = String::new();
        for nid in order {
            let node = &self.nodes[nid];
            let vals = f.node_values(column, id32(nid));
            let mean = if vals.is_empty() {
                f64::NAN
            } else {
                vals.iter().map(|(_, v)| v).sum::<f64>() / vals.len() as f64
            };
            let indent = "  ".repeat(node.path.len().saturating_sub(1));
            out.push_str(&format!("{mean:12.6} {indent}{}\n", node.name()));
        }
        out
    }

    /// Nodes whose leaf name contains `pattern` (a simple Hatchet-style
    /// query on the call graph).
    pub fn query_nodes(&self, pattern: &str) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].name().contains(pattern))
            .collect()
    }

    /// Keep only the sub-thicket of nodes matching `pattern` (the query
    /// counterpart of [`Thicket::filter_metadata`]).
    pub fn filter_nodes(&self, pattern: &str) -> Thicket {
        let keep = self.query_nodes(pattern);
        let mut remap: Vec<Option<u32>> = vec![None; self.nodes.len()];
        let mut nodes = Vec::with_capacity(keep.len());
        for &nid in &keep {
            remap[nid] = Some(id32(nodes.len()));
            nodes.push(self.nodes[nid].clone());
        }
        let fv = self.frame_view();
        let frame = fv.select_nodes(&remap, nodes.len());
        Thicket {
            nodes,
            profiles: self.profiles.clone(),
            frame,
            metadata: self.metadata.clone(),
            statsframe: BTreeMap::new(),
        }
    }

    /// Names of every metric column.
    pub fn column_names(&self) -> Vec<&str> {
        self.frame.column_names()
    }

    /// Serialize the performance dataframe as CSV: one row per
    /// (node, profile) with every metric column. Fields containing `,`,
    /// `"`, or newlines are RFC-4180 quoted (quotes doubled); numeric
    /// fields never need quoting.
    pub fn to_csv(&self) -> String {
        let f = self.frame_view();
        let cols: Vec<&String> = f.columns().keys().collect();
        let mut out = String::from("node,profile");
        for c in &cols {
            out.push(',');
            out.push_str(&csv_escape(c));
        }
        out.push('\n');
        for (pos, &(nid, pid)) in f.rows().iter().enumerate() {
            out.push_str(&csv_escape(&self.nodes[nid as usize].path.join("/")));
            out.push(',');
            out.push_str(&pid.to_string());
            for c in &cols {
                out.push(',');
                if let Some(v) = f.columns()[*c].get(pos) {
                    out.push_str(&format!("{v:e}"));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render a text heatmap of `column` over nodes × profiles (Thicket's
    /// `display_heatmap`): each cell is a shade from '.' (minimum) to '#'
    /// (maximum), normalized per node so cross-profile differences stand
    /// out. Nodes without data are skipped.
    pub fn heatmap(&self, column: &str) -> String {
        const SHADES: &[u8] = b".:-=+*%#";
        let f = self.frame_view();
        let mut out = format!(
            "heatmap of {column} (columns = profiles {:?})\n",
            self.profiles
        );
        for nid in 0..self.nodes.len() {
            let vals = f.node_values(column, id32(nid));
            if vals.is_empty() {
                continue;
            }
            let lo = vals.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min);
            let hi = vals
                .iter()
                .map(|(_, v)| *v)
                .fold(f64::NEG_INFINITY, f64::max);
            let mut cells = String::new();
            let mut cur = 0usize;
            for &p in &self.profiles {
                while cur < vals.len() && (vals[cur].0 as usize) < p {
                    cur += 1;
                }
                if cur < vals.len() && vals[cur].0 as usize == p {
                    let v = vals[cur].1;
                    let frac = if hi > lo { (v - lo) / (hi - lo) } else { 0.5 };
                    let idx = (frac * (SHADES.len() - 1) as f64).round() as usize;
                    cells.push(SHADES[idx.min(SHADES.len() - 1)] as char);
                } else {
                    cells.push(' ');
                }
            }
            out.push_str(&format!("{cells}  {}\n", self.nodes[nid].path.join("/")));
        }
        out
    }

    /// Number of (node, profile) rows carrying at least one metric.
    pub fn row_count(&self) -> usize {
        self.frame_view().rows().len()
    }
}

fn json_to_string(v: &serde_json::Value) -> String {
    match v {
        serde_json::Value::String(s) => s.clone(),
        other => other.to_string(),
    }
}

/// RFC-4180 field quoting: wrap in double quotes when the field contains a
/// comma, quote, or line break, doubling any embedded quotes.
fn csv_escape(field: &str) -> std::borrow::Cow<'_, str> {
    if field.contains([',', '"', '\n', '\r']) {
        let mut s = String::with_capacity(field.len() + 2);
        s.push('"');
        for ch in field.chars() {
            if ch == '"' {
                s.push('"');
            }
            s.push(ch);
        }
        s.push('"');
        std::borrow::Cow::Owned(s)
    } else {
        std::borrow::Cow::Borrowed(field)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(variant: &str, kernel_time: f64) -> ProfileData {
        let mut globals = BTreeMap::new();
        globals.insert("variant".to_string(), serde_json::json!(variant));
        let mut metrics = BTreeMap::new();
        metrics.insert("avg#time.duration".to_string(), kernel_time);
        metrics.insert("Bytes/Rep".to_string(), 100.0);
        ProfileData {
            globals,
            records: vec![
                (vec!["RAJAPerf".into()], BTreeMap::new()),
                (vec!["RAJAPerf".into(), "TRIAD".into()], metrics),
            ],
        }
    }

    #[test]
    fn ingest_builds_nodes_and_columns() {
        let t = Thicket::from_profiles(&[profile("RAJA_Seq", 1.0), profile("Base_Seq", 2.0)]);
        assert_eq!(t.profiles.len(), 2);
        assert_eq!(t.nodes.len(), 2, "shared call tree is unioned");
        let nid = t.node_by_name("TRIAD").unwrap();
        assert_eq!(t.value("avg#time.duration", nid, 0), Some(1.0));
        assert_eq!(t.value("avg#time.duration", nid, 1), Some(2.0));
    }

    #[test]
    fn node_lookup_by_path() {
        let t = Thicket::from_profiles(&[profile("v", 1.0)]);
        assert!(t.node_id(&["RAJAPerf", "TRIAD"]).is_some());
        assert!(t.node_id(&["TRIAD"]).is_none(), "path must match fully");
    }

    #[test]
    fn concat_renumbers_profiles() {
        let a = Thicket::from_profiles(&[profile("A", 1.0)]);
        let b = Thicket::from_profiles(&[profile("B", 2.0)]);
        let c = Thicket::concat(&[a, b]);
        assert_eq!(c.profiles, vec![0, 1]);
        let nid = c.node_by_name("TRIAD").unwrap();
        assert_eq!(c.value("avg#time.duration", nid, 0), Some(1.0));
        assert_eq!(c.value("avg#time.duration", nid, 1), Some(2.0));
        assert_eq!(
            c.metadata[&1]["variant"],
            serde_json::json!("B"),
            "metadata follows renumbered profile"
        );
    }

    #[test]
    fn filter_metadata_selects_profiles() {
        let t = Thicket::from_profiles(&[
            profile("RAJA_Seq", 1.0),
            profile("Base_Seq", 2.0),
            profile("RAJA_Seq", 3.0),
        ]);
        let f = t.filter_metadata(|md| md["variant"] == serde_json::json!("RAJA_Seq"));
        assert_eq!(f.profiles.len(), 2);
        let nid = f.node_by_name("TRIAD").unwrap();
        assert_eq!(f.value("avg#time.duration", nid, 1), None, "dropped");
        assert_eq!(f.value("avg#time.duration", nid, 2), Some(3.0));
    }

    #[test]
    fn groupby_partitions_by_variant() {
        let t = Thicket::from_profiles(&[
            profile("RAJA_Seq", 1.0),
            profile("Base_Seq", 2.0),
            profile("RAJA_Seq", 3.0),
        ]);
        let groups = t.groupby("variant");
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, "Base_Seq");
        assert_eq!(groups[0].1.profiles.len(), 1);
        assert_eq!(groups[1].0, "RAJA_Seq");
        assert_eq!(groups[1].1.profiles.len(), 2);
    }

    /// Regression: profiles whose metadata lacks the groupby key used to be
    /// silently dropped from every group; they now land in the
    /// `"(missing)"` sentinel group, so groupby is a partition.
    #[test]
    fn groupby_missing_key_lands_in_sentinel_group() {
        let mut no_variant = profile("ignored", 5.0);
        no_variant.globals.clear();
        let t = Thicket::from_profiles(&[
            profile("RAJA_Seq", 1.0),
            no_variant,
            profile("Base_Seq", 2.0),
        ]);
        let groups = t.groupby("variant");
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].0, MISSING_GROUP, "'(' sorts before letters");
        assert_eq!(groups[0].1.profiles, vec![1]);
        let nid = groups[0].1.node_by_name("TRIAD").unwrap();
        assert_eq!(
            groups[0].1.value("avg#time.duration", nid, 1),
            Some(5.0),
            "sentinel group keeps its data"
        );
        let total: usize = groups.iter().map(|(_, g)| g.profiles.len()).sum();
        assert_eq!(total, t.profiles.len(), "groupby partitions every profile");
    }

    #[test]
    fn stats_aggregate_across_profiles() {
        let mut t = Thicket::from_profiles(&[
            profile("a", 1.0),
            profile("b", 2.0),
            profile("c", 6.0),
        ]);
        let nid = t.node_by_name("TRIAD").unwrap();
        let mean_col = t.stats("avg#time.duration", Stat::Mean);
        assert_eq!(t.stat_value(&mean_col, nid), Some(3.0));
        let med_col = t.stats("avg#time.duration", Stat::Median);
        assert_eq!(t.stat_value(&med_col, nid), Some(2.0));
        let min_col = t.stats("avg#time.duration", Stat::Min);
        assert_eq!(t.stat_value(&min_col, nid), Some(1.0));
        let max_col = t.stats("avg#time.duration", Stat::Max);
        assert_eq!(t.stat_value(&max_col, nid), Some(6.0));
        let std_col = t.stats("avg#time.duration", Stat::Std);
        let expected_std = ((4.0 + 1.0 + 9.0) / 3.0f64).sqrt();
        assert!((t.stat_value(&std_col, nid).unwrap() - expected_std).abs() < 1e-12);
    }

    #[test]
    fn stats_on_missing_data_is_nan() {
        let mut t = Thicket::from_profiles(&[profile("a", 1.0)]);
        let root = t.node_by_name("RAJAPerf").unwrap();
        let col = t.stats("avg#time.duration", Stat::Mean);
        assert!(t.stat_value(&col, root).unwrap().is_nan());
    }

    #[test]
    fn caliper_json_parses() {
        let text = r#"{
            "globals": {"variant": "RAJA_Seq"},
            "records": [
                {"path": ["RAJAPerf", "ADD"], "metrics": {"count": 3.0}}
            ]
        }"#;
        let p = ProfileData::from_caliper_json(text).unwrap();
        assert_eq!(p.globals["variant"], serde_json::json!("RAJA_Seq"));
        assert_eq!(p.records.len(), 1);
        let t = Thicket::from_profiles(&[p]);
        let nid = t.node_by_name("ADD").unwrap();
        assert_eq!(t.value("count", nid, 0), Some(3.0));
    }

    #[test]
    fn tree_renders_hierarchy() {
        let t = Thicket::from_profiles(&[profile("v", 1.5)]);
        let text = t.tree("avg#time.duration");
        assert!(text.contains("RAJAPerf"));
        assert!(text.contains("TRIAD"));
        assert!(text.contains("1.5"));
    }

    #[test]
    fn percentile_stat_interpolates() {
        let mut t = Thicket::from_profiles(&[
            profile("a", 1.0),
            profile("b", 2.0),
            profile("c", 3.0),
            profile("d", 4.0),
        ]);
        let nid = t.node_by_name("TRIAD").unwrap();
        let p25 = t.stats("avg#time.duration", Stat::Percentile(0.25));
        assert!((t.stat_value(&p25, nid).unwrap() - 1.75).abs() < 1e-12);
        let p100 = t.stats("avg#time.duration", Stat::Percentile(1.0));
        assert_eq!(t.stat_value(&p100, nid), Some(4.0));
    }

    #[test]
    fn query_and_filter_nodes() {
        let t = Thicket::from_profiles(&[profile("v", 1.0)]);
        assert_eq!(t.query_nodes("TRIAD").len(), 1);
        assert_eq!(t.query_nodes("RAJA").len(), 1, "matches the root node");
        let f = t.filter_nodes("TRIAD");
        assert_eq!(f.nodes.len(), 1);
        assert_eq!(f.value("avg#time.duration", 0, 0), Some(1.0));
    }

    #[test]
    fn csv_export_has_rows_and_columns() {
        let t = Thicket::from_profiles(&[profile("a", 1.0), profile("b", 2.0)]);
        let csv = t.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("node,profile"));
        assert!(header.contains("avg#time.duration"));
        // Only the TRIAD node carries metrics: 2 data rows.
        assert_eq!(lines.count(), 2);
        assert!(!t.column_names().is_empty());
    }

    /// A minimal RFC-4180 line parser for the round-trip assertions: splits
    /// one record into fields, honoring quoted fields with doubled quotes.
    fn parse_csv_line(line: &str) -> Vec<String> {
        let mut fields = Vec::new();
        let mut cur = String::new();
        let mut chars = line.chars().peekable();
        let mut quoted = false;
        while let Some(ch) = chars.next() {
            if quoted {
                if ch == '"' {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        quoted = false;
                    }
                } else {
                    cur.push(ch);
                }
            } else {
                match ch {
                    '"' => quoted = true,
                    ',' => fields.push(std::mem::take(&mut cur)),
                    _ => cur.push(ch),
                }
            }
        }
        fields.push(cur);
        fields
    }

    /// Regression: node paths and column names containing CSV metacharacters
    /// used to be emitted raw, corrupting the table shape. They are now
    /// RFC-4180 quoted and survive a parse round-trip.
    #[test]
    fn csv_quotes_special_fields_round_trip() {
        let mut metrics = BTreeMap::new();
        metrics.insert("weird,col\"name".to_string(), 2.5);
        let p = ProfileData {
            globals: BTreeMap::new(),
            records: vec![(
                vec!["RAJA,Perf".into(), "TRIAD \"fused\"".into()],
                metrics,
            )],
        };
        let t = Thicket::from_profiles(&[p]);
        let csv = t.to_csv();
        let mut lines = csv.lines();
        let header = parse_csv_line(lines.next().unwrap());
        assert_eq!(header, vec!["node", "profile", "weird,col\"name"]);
        let row = parse_csv_line(lines.next().unwrap());
        assert_eq!(row[0], "RAJA,Perf/TRIAD \"fused\"");
        assert_eq!(row[1], "0");
        assert_eq!(row[2].parse::<f64>().unwrap(), 2.5);
        // Every record still has the header's field count.
        for line in csv.lines().skip(1) {
            assert_eq!(parse_csv_line(line).len(), header.len());
        }
    }

    #[test]
    fn corrupt_profile_json_is_an_error_not_a_panic() {
        assert!(ProfileData::from_caliper_json("{not json").is_err());
        assert!(ProfileData::from_caliper_json(r#"{"globals": {}}"#).is_err());
        let missing = std::path::Path::new("/nonexistent/profile.cali.json");
        assert!(ProfileData::read_file(missing).is_err());
    }

    #[test]
    fn heatmap_shades_extremes() {
        let t = Thicket::from_profiles(&[profile("a", 1.0), profile("b", 9.0)]);
        let hm = t.heatmap("avg#time.duration");
        // The TRIAD row has a min cell '.' and a max cell '#'.
        let row = hm.lines().find(|l| l.contains("TRIAD")).unwrap();
        assert!(row.starts_with(".#"), "{row}");
        // Root node has no data for the column: skipped entirely.
        assert!(!hm.contains("RAJAPerf\n") || hm.lines().count() >= 2);
    }

    #[test]
    fn row_count_counts_touched_rows() {
        let t = Thicket::from_profiles(&[profile("a", 1.0), profile("b", 2.0)]);
        // Root has no metrics; TRIAD × 2 profiles = 2 rows.
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn profile_ids_stay_unique_after_filtering() {
        let mut t = Thicket::from_profiles(&[
            profile("keep", 1.0),
            profile("drop", 2.0),
            profile("keep", 3.0),
        ]);
        // Filter leaves ids {0, 2}; the next ingest must not reuse id 2.
        t = t.filter_metadata(|md| md["variant"] == serde_json::json!("keep"));
        assert_eq!(t.profiles, vec![0, 2]);
        t.ingest(&profile("new", 4.0));
        assert_eq!(t.profiles, vec![0, 2, 3], "max+1 allocation, not len");
    }

    /// Streaming ingest through an [`IngestSession`] must land in the same
    /// observable state as bulk [`Thicket::from_profiles`].
    #[test]
    fn ingest_session_matches_bulk_ingest() {
        let ps: Vec<ProfileData> = (0..7)
            .map(|i| profile(["a", "b"][i % 2], i as f64))
            .collect();
        let bulk = Thicket::from_profiles(&ps);
        let mut s = IngestSession::new();
        for p in &ps {
            s.ingest(p);
        }
        assert_eq!(s.len(), 7);
        // Reads through the session see pending data already.
        let nid = s.thicket().node_by_name("TRIAD").unwrap();
        assert_eq!(s.thicket().value("avg#time.duration", nid, 6), Some(6.0));
        let streamed = s.finish();
        assert_eq!(streamed.to_csv(), bulk.to_csv());
        assert_eq!(streamed.profiles, bulk.profiles);
        assert_eq!(streamed.heatmap("avg#time.duration"), bulk.heatmap("avg#time.duration"));
    }

    /// Perf regression: concat used to re-scan the node list per record
    /// (O(nodes²·columns)); with the path index, composing the 12-cell
    /// sweep's worth of full-registry thickets is effectively instant.
    #[test]
    fn concat_of_sweep_sized_thickets_is_fast() {
        // 12 sweep cells × one profile over a 600-node call tree with 8
        // metric columns each — the shape `rajaperf --sweep` produces.
        let cells: Vec<Thicket> = (0..12)
            .map(|cell| {
                let mut globals = BTreeMap::new();
                globals.insert("variant".to_string(), serde_json::json!(format!("v{cell}")));
                let records = (0..600)
                    .map(|k| {
                        let mut metrics = BTreeMap::new();
                        for m in 0..8 {
                            metrics.insert(format!("metric{m}"), (cell * 600 + k) as f64 + m as f64);
                        }
                        (
                            vec!["RAJAPerf".to_string(), format!("group{}", k % 20), format!("kernel{k}")],
                            metrics,
                        )
                    })
                    .collect();
                Thicket::from_profiles(&[ProfileData { globals, records }])
            })
            .collect();
        // Deliberately real wall-clock: this asserts an actual performance
        // bound on concat, which a virtual clock would trivialize.
        #[allow(clippy::disallowed_methods)]
        let start = std::time::Instant::now();
        let combined = Thicket::concat(&cells);
        let elapsed = start.elapsed();
        assert_eq!(combined.profiles.len(), 12);
        assert_eq!(combined.nodes.len(), 600, "node set is unioned, not duplicated");
        let nid = combined.node_by_name("kernel17").unwrap();
        assert_eq!(combined.value("metric0", nid, 0), Some(17.0));
        assert_eq!(combined.value("metric0", nid, 11), Some((11 * 600 + 17) as f64));
        assert!(
            elapsed < std::time::Duration::from_secs(1),
            "sweep-sized concat took {elapsed:?}; the path index should make it well under a second"
        );
    }
}
