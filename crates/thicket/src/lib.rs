//! Thicket-style exploratory data analysis for multi-run performance data.
//!
//! [Thicket](https://github.com/llnl/thicket) is LLNL's Python toolkit for
//! composing and analyzing performance profiles from many runs. Its data
//! model has three components (paper §II-D): a *performance dataframe* of
//! metrics indexed by (call-tree node, profile); a *metadata table* of
//! per-run build/execution context; and a *statsframe* of aggregated
//! statistics per node. This crate reproduces that model over the profiles
//! our `caliper` crate writes:
//!
//! * [`Thicket::from_profiles`] — the `from_caliperreader` equivalent:
//!   ingest many profiles, merging their call trees.
//! * [`Thicket::concat`] — `concat_thickets`: compose thickets from
//!   different runs/configurations into one.
//! * [`Thicket::filter_metadata`] / [`Thicket::groupby`] — select or
//!   partition profiles by metadata (e.g. by `variant` and `tuning`, as the
//!   paper's analysis does).
//! * [`Thicket::stats`] — aggregate a metric across profiles per node
//!   (mean/median/std/min/max) into the statsframe.
//! * [`Thicket::tree`] — text rendering of the call tree annotated with a
//!   metric, Thicket/Hatchet's `tree()`.
//!
//! The dataframe is column-oriented over `f64` metrics, which is what every
//! analysis in the paper consumes.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A node of the unified call graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Full call path from the root.
    pub path: Vec<String>,
}

impl Node {
    /// The node's own (leaf) name.
    pub fn name(&self) -> &str {
        self.path.last().map(String::as_str).unwrap_or("")
    }
}

/// Row identity in the performance dataframe: (node, profile).
pub type RowKey = (usize, usize);

/// The Thicket: call graph + performance dataframe + metadata + statsframe.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Thicket {
    /// Unified call-graph nodes; `node id` = index.
    pub nodes: Vec<Node>,
    /// Profile ids, in ingestion order. Values are opaque labels.
    pub profiles: Vec<usize>,
    /// Metric columns: name → (row key → value). Sparse: a profile that
    /// never visited a node simply has no entry.
    pub columns: BTreeMap<String, BTreeMap<RowKey, f64>>,
    /// Per-profile metadata (from profile globals): profile → key → value.
    pub metadata: BTreeMap<usize, BTreeMap<String, serde_json::Value>>,
    /// Aggregated statistics per node: column → node → value. Filled by
    /// [`Thicket::stats`].
    pub statsframe: BTreeMap<String, BTreeMap<usize, f64>>,
}

/// Statistics produced by [`Thicket::stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Stat {
    /// Arithmetic mean.
    Mean,
    /// Median (average of middle two for even counts).
    Median,
    /// Population standard deviation.
    Std,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Linear-interpolated percentile, `0.0..=1.0` (Thicket exposes
    /// quartiles through its `calc_*_columns` helpers).
    Percentile(f64),
}

impl Stat {
    fn name(&self) -> String {
        match self {
            Stat::Mean => "mean".to_string(),
            Stat::Median => "median".to_string(),
            Stat::Std => "std".to_string(),
            Stat::Min => "min".to_string(),
            Stat::Max => "max".to_string(),
            Stat::Percentile(q) => format!("p{:02.0}", q * 100.0),
        }
    }

    fn apply(&self, values: &mut Vec<f64>) -> f64 {
        if values.is_empty() {
            return f64::NAN;
        }
        match self {
            Stat::Mean => values.iter().sum::<f64>() / values.len() as f64,
            Stat::Median => Stat::Percentile(0.5).apply(values),
            Stat::Std => {
                let mean = values.iter().sum::<f64>() / values.len() as f64;
                (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64)
                    .sqrt()
            }
            Stat::Min => values.iter().cloned().fold(f64::INFINITY, f64::min),
            Stat::Max => values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            Stat::Percentile(q) => {
                values.sort_by(f64::total_cmp);
                let q = q.clamp(0.0, 1.0);
                let pos = q * (values.len() - 1) as f64;
                let lo = pos.floor() as usize;
                let hi = pos.ceil() as usize;
                if lo == hi {
                    values[lo]
                } else {
                    let frac = pos - lo as f64;
                    values[lo] * (1.0 - frac) + values[hi] * frac
                }
            }
        }
    }
}

/// Minimal profile shape consumed by [`Thicket::from_profiles`]; matches
/// `caliper::Profile` structurally (kept independent so `thicket` does not
/// depend on `caliper`, mirroring Thicket reading `.cali` files on disk).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProfileData {
    /// Run metadata.
    pub globals: BTreeMap<String, serde_json::Value>,
    /// (call path, metric columns) records.
    pub records: Vec<(Vec<String>, BTreeMap<String, f64>)>,
}

impl ProfileData {
    /// Parse a caliper-JSON profile (`{"globals": .., "records": [{"path":
    /// .., "metrics": ..}]}`).
    pub fn from_caliper_json(text: &str) -> Result<ProfileData, serde_json::Error> {
        #[derive(Deserialize)]
        struct Rec {
            path: Vec<String>,
            metrics: BTreeMap<String, f64>,
        }
        #[derive(Deserialize)]
        struct Prof {
            globals: BTreeMap<String, serde_json::Value>,
            records: Vec<Rec>,
        }
        let p: Prof = serde_json::from_str(text)?;
        Ok(ProfileData {
            globals: p.globals,
            records: p.records.into_iter().map(|r| (r.path, r.metrics)).collect(),
        })
    }

    /// Read a caliper-JSON profile file.
    ///
    /// A truncated, torn, or non-JSON file returns a descriptive
    /// `InvalidData` error naming the file and the byte offset where
    /// parsing failed (the parser embeds `at byte N` in its messages) —
    /// never a panic. Campaign ingestion ([`Thicket::from_files`]) relies
    /// on this to skip corrupt cells instead of dying on them.
    pub fn read_file(path: &std::path::Path) -> std::io::Result<ProfileData> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| std::io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
        Self::from_caliper_json(&text).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}: malformed profile: {e}", path.display()),
            )
        })
    }
}

/// What [`Thicket::from_files`] skipped: one `(path, reason)` pair per
/// unreadable or malformed profile, so campaign tooling can report — and
/// re-run — exactly the cells that were lost.
#[derive(Debug, Clone, Default)]
pub struct IngestStats {
    /// Files ingested successfully.
    pub ingested: usize,
    /// Files skipped, with the error that disqualified each.
    pub skipped: Vec<(std::path::PathBuf, String)>,
}

impl IngestStats {
    /// Number of files skipped (the warning count).
    pub fn warnings(&self) -> usize {
        self.skipped.len()
    }
}

/// Transient path → node-id index used by the bulk ingestion paths. Built
/// once per bulk operation (O(nodes)) so node lookups are hashed instead of
/// linear — concatenating sweep-sized thickets was O(nodes²·columns) with
/// the old per-record scan. Not stored on [`Thicket`]: the struct is plain
/// serializable data, and an index field would leak into its JSON form.
type PathIndex = std::collections::HashMap<Vec<String>, usize>;

impl Thicket {
    /// Ingest profiles, unioning their call trees. Each profile gets the
    /// next free profile id.
    pub fn from_profiles(profiles: &[ProfileData]) -> Thicket {
        let mut t = Thicket::default();
        let mut index = t.build_path_index();
        for p in profiles {
            t.ingest_indexed(&mut index, p);
        }
        t
    }

    /// Ingest profile files, skipping (not dying on) any that are
    /// unreadable or malformed — the fault-tolerant entry point for
    /// campaign-scale analysis, where a sweep directory may contain
    /// quarantined or torn cells. Returns the thicket built from the intact
    /// files plus an [`IngestStats`] listing every skipped file and why.
    pub fn from_files<P: AsRef<std::path::Path>>(paths: &[P]) -> (Thicket, IngestStats) {
        let mut t = Thicket::default();
        let mut index = t.build_path_index();
        let mut stats = IngestStats::default();
        for p in paths {
            let p = p.as_ref();
            match ProfileData::read_file(p) {
                Ok(data) => {
                    t.ingest_indexed(&mut index, &data);
                    stats.ingested += 1;
                }
                Err(e) => stats.skipped.push((p.to_path_buf(), e.to_string())),
            }
        }
        (t, stats)
    }

    /// Add one profile to this thicket.
    pub fn ingest(&mut self, p: &ProfileData) {
        let mut index = self.build_path_index();
        self.ingest_indexed(&mut index, p);
    }

    fn ingest_indexed(&mut self, index: &mut PathIndex, p: &ProfileData) {
        let pid = self.next_profile_id();
        self.profiles.push(pid);
        self.metadata.insert(pid, p.globals.clone());
        for (path, metrics) in &p.records {
            let nid = self.node_id_or_insert(index, path);
            for (col, &val) in metrics {
                self.columns
                    .entry(col.clone())
                    .or_default()
                    .insert((nid, pid), val);
            }
        }
    }

    /// Smallest unused profile id. `max + 1`, not `len`: ids stay unique
    /// even after [`Thicket::filter_metadata`] leaves the set non-contiguous.
    fn next_profile_id(&self) -> usize {
        self.profiles.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// Index the current node set by path.
    fn build_path_index(&self) -> PathIndex {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.path.clone(), i))
            .collect()
    }

    fn node_id_or_insert(&mut self, index: &mut PathIndex, path: &[String]) -> usize {
        if let Some(&i) = index.get(path) {
            return i;
        }
        let id = self.nodes.len();
        self.nodes.push(Node {
            path: path.to_vec(),
        });
        index.insert(path.to_vec(), id);
        id
    }

    /// Node id of a call path, if present.
    pub fn node_id(&self, path: &[&str]) -> Option<usize> {
        self.nodes.iter().position(|n| {
            n.path.len() == path.len() && n.path.iter().zip(path).all(|(a, b)| a == b)
        })
    }

    /// Node id by leaf name (first match).
    pub fn node_by_name(&self, name: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.name() == name)
    }

    /// Metric value at (node, profile).
    pub fn value(&self, column: &str, node: usize, profile: usize) -> Option<f64> {
        self.columns.get(column)?.get(&(node, profile)).copied()
    }

    /// All values of `column` at `node` across profiles (profile order).
    pub fn node_values(&self, column: &str, node: usize) -> Vec<(usize, f64)> {
        let Some(col) = self.columns.get(column) else {
            return Vec::new();
        };
        self.profiles
            .iter()
            .filter_map(|&p| col.get(&(node, p)).map(|&v| (p, v)))
            .collect()
    }

    /// Compose thickets into one (Thicket's `concat_thickets`): profiles are
    /// renumbered; call trees are unioned. Linear in the total data volume:
    /// node ids map through a per-thicket vector and every column's sparse
    /// entries are copied directly, instead of the old per-profile ×
    /// per-node × per-column probing.
    pub fn concat(thickets: &[Thicket]) -> Thicket {
        let mut out = Thicket::default();
        let mut index = PathIndex::new();
        for t in thickets {
            // This thicket's node id → out's node id (node id = index).
            let node_map: Vec<usize> = t
                .nodes
                .iter()
                .map(|n| out.node_id_or_insert(&mut index, &n.path))
                .collect();
            let mut prof_map: BTreeMap<usize, usize> = BTreeMap::new();
            for (next_pid, &pid) in (out.next_profile_id()..).zip(t.profiles.iter()) {
                out.profiles.push(next_pid);
                if let Some(md) = t.metadata.get(&pid) {
                    out.metadata.insert(next_pid, md.clone());
                }
                prof_map.insert(pid, next_pid);
            }
            for (col, data) in &t.columns {
                let out_col = out.columns.entry(col.clone()).or_default();
                for (&(nid, pid), &v) in data {
                    if let Some(&new_pid) = prof_map.get(&pid) {
                        out_col.insert((node_map[nid], new_pid), v);
                    }
                }
            }
        }
        out
    }

    /// Keep only profiles whose metadata satisfies `pred` (Thicket's
    /// `filter_metadata`). Node set is preserved; orphaned values dropped.
    pub fn filter_metadata(&self, pred: impl Fn(&BTreeMap<String, serde_json::Value>) -> bool) -> Thicket {
        let keep: Vec<usize> = self
            .profiles
            .iter()
            .copied()
            .filter(|p| self.metadata.get(p).map(&pred).unwrap_or(false))
            .collect();
        let mut out = Thicket {
            nodes: self.nodes.clone(),
            profiles: keep.clone(),
            ..Default::default()
        };
        for &p in &keep {
            if let Some(md) = self.metadata.get(&p) {
                out.metadata.insert(p, md.clone());
            }
        }
        for (col, data) in &self.columns {
            let filtered: BTreeMap<RowKey, f64> = data
                .iter()
                .filter(|((_, p), _)| keep.contains(p))
                .map(|(&k, &v)| (k, v))
                .collect();
            if !filtered.is_empty() {
                out.columns.insert(col.clone(), filtered);
            }
        }
        out
    }

    /// Partition profiles by the string value of a metadata key (Thicket's
    /// `groupby`). Profiles missing the key are dropped. Groups are returned
    /// in sorted key order.
    pub fn groupby(&self, key: &str) -> Vec<(String, Thicket)> {
        let mut values: Vec<String> = self
            .profiles
            .iter()
            .filter_map(|p| self.metadata.get(p))
            .filter_map(|md| md.get(key))
            .map(json_to_string)
            .collect();
        values.sort();
        values.dedup();
        values
            .into_iter()
            .map(|v| {
                let group = self.filter_metadata(|md| {
                    md.get(key).map(json_to_string).as_deref() == Some(v.as_str())
                });
                (v, group)
            })
            .collect()
    }

    /// Aggregate `column` across profiles for every node, storing the result
    /// in the statsframe as `"<column>_<stat>"` and returning the column
    /// name. NaN is stored for nodes with no observations.
    pub fn stats(&mut self, column: &str, stat: Stat) -> String {
        let out_name = format!("{column}_{}", stat.name());
        let mut result = BTreeMap::new();
        for nid in 0..self.nodes.len() {
            let mut vals: Vec<f64> = self
                .node_values(column, nid)
                .into_iter()
                .map(|(_, v)| v)
                .collect();
            result.insert(nid, stat.apply(&mut vals));
        }
        self.statsframe.insert(out_name.clone(), result);
        out_name
    }

    /// A statsframe value.
    pub fn stat_value(&self, stat_column: &str, node: usize) -> Option<f64> {
        self.statsframe.get(stat_column)?.get(&node).copied()
    }

    /// Render the call tree annotated with a metric column's mean across
    /// profiles (Hatchet/Thicket `tree()`).
    pub fn tree(&self, column: &str) -> String {
        // Order nodes by path for a stable depth-first-looking listing.
        let mut order: Vec<usize> = (0..self.nodes.len()).collect();
        order.sort_by(|&a, &b| self.nodes[a].path.cmp(&self.nodes[b].path));
        let mut out = String::new();
        for nid in order {
            let node = &self.nodes[nid];
            let vals = self.node_values(column, nid);
            let mean = if vals.is_empty() {
                f64::NAN
            } else {
                vals.iter().map(|(_, v)| v).sum::<f64>() / vals.len() as f64
            };
            let indent = "  ".repeat(node.path.len().saturating_sub(1));
            out.push_str(&format!("{mean:12.6} {indent}{}\n", node.name()));
        }
        out
    }

    /// Nodes whose leaf name contains `pattern` (a simple Hatchet-style
    /// query on the call graph).
    pub fn query_nodes(&self, pattern: &str) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].name().contains(pattern))
            .collect()
    }

    /// Keep only the sub-thicket of nodes matching `pattern` (the query
    /// counterpart of [`Thicket::filter_metadata`]).
    pub fn filter_nodes(&self, pattern: &str) -> Thicket {
        let keep = self.query_nodes(pattern);
        let mut out = Thicket {
            profiles: self.profiles.clone(),
            metadata: self.metadata.clone(),
            ..Default::default()
        };
        let mut remap = std::collections::BTreeMap::new();
        for &nid in &keep {
            remap.insert(nid, out.nodes.len());
            out.nodes.push(self.nodes[nid].clone());
        }
        for (col, data) in &self.columns {
            let filtered: BTreeMap<RowKey, f64> = data
                .iter()
                .filter_map(|(&(n, p), &v)| remap.get(&n).map(|&nn| ((nn, p), v)))
                .collect();
            if !filtered.is_empty() {
                out.columns.insert(col.clone(), filtered);
            }
        }
        out
    }

    /// Names of every metric column.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.keys().map(String::as_str).collect()
    }

    /// Serialize the performance dataframe as CSV: one row per
    /// (node, profile) with every metric column.
    pub fn to_csv(&self) -> String {
        let cols: Vec<&String> = self.columns.keys().collect();
        let mut out = String::from("node,profile");
        for c in &cols {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (nid, node) in self.nodes.iter().enumerate() {
            for &pid in &self.profiles {
                let has_data = cols
                    .iter()
                    .any(|c| self.columns[*c].contains_key(&(nid, pid)));
                if !has_data {
                    continue;
                }
                out.push_str(&format!("{},{}", node.path.join("/"), pid));
                for c in &cols {
                    out.push(',');
                    if let Some(v) = self.columns[*c].get(&(nid, pid)) {
                        out.push_str(&format!("{v:e}"));
                    }
                }
                out.push('\n');
            }
        }
        out
    }

    /// Render a text heatmap of `column` over nodes × profiles (Thicket's
    /// `display_heatmap`): each cell is a shade from '.' (minimum) to '#'
    /// (maximum), normalized per node so cross-profile differences stand
    /// out. Nodes without data are skipped.
    pub fn heatmap(&self, column: &str) -> String {
        const SHADES: &[u8] = b".:-=+*%#";
        let mut out = format!("heatmap of {column} (columns = profiles {:?})\n", self.profiles);
        for nid in 0..self.nodes.len() {
            let vals = self.node_values(column, nid);
            if vals.is_empty() {
                continue;
            }
            let lo = vals.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min);
            let hi = vals.iter().map(|(_, v)| *v).fold(f64::NEG_INFINITY, f64::max);
            let mut cells = String::new();
            for &p in &self.profiles {
                match self.value(column, nid, p) {
                    Some(v) => {
                        let frac = if hi > lo { (v - lo) / (hi - lo) } else { 0.5 };
                        let idx = (frac * (SHADES.len() - 1) as f64).round() as usize;
                        cells.push(SHADES[idx.min(SHADES.len() - 1)] as char);
                    }
                    None => cells.push(' '),
                }
            }
            out.push_str(&format!("{cells}  {}\n", self.nodes[nid].path.join("/")));
        }
        out
    }

    /// Number of (node, profile) rows carrying at least one metric.
    pub fn row_count(&self) -> usize {
        let mut rows: std::collections::HashSet<RowKey> = std::collections::HashSet::new();
        for data in self.columns.values() {
            rows.extend(data.keys().copied());
        }
        rows.len()
    }
}

fn json_to_string(v: &serde_json::Value) -> String {
    match v {
        serde_json::Value::String(s) => s.clone(),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(variant: &str, kernel_time: f64) -> ProfileData {
        let mut globals = BTreeMap::new();
        globals.insert("variant".to_string(), serde_json::json!(variant));
        let mut metrics = BTreeMap::new();
        metrics.insert("avg#time.duration".to_string(), kernel_time);
        metrics.insert("Bytes/Rep".to_string(), 100.0);
        ProfileData {
            globals,
            records: vec![
                (vec!["RAJAPerf".into()], BTreeMap::new()),
                (vec!["RAJAPerf".into(), "TRIAD".into()], metrics),
            ],
        }
    }

    #[test]
    fn ingest_builds_nodes_and_columns() {
        let t = Thicket::from_profiles(&[profile("RAJA_Seq", 1.0), profile("Base_Seq", 2.0)]);
        assert_eq!(t.profiles.len(), 2);
        assert_eq!(t.nodes.len(), 2, "shared call tree is unioned");
        let nid = t.node_by_name("TRIAD").unwrap();
        assert_eq!(t.value("avg#time.duration", nid, 0), Some(1.0));
        assert_eq!(t.value("avg#time.duration", nid, 1), Some(2.0));
    }

    #[test]
    fn node_lookup_by_path() {
        let t = Thicket::from_profiles(&[profile("v", 1.0)]);
        assert!(t.node_id(&["RAJAPerf", "TRIAD"]).is_some());
        assert!(t.node_id(&["TRIAD"]).is_none(), "path must match fully");
    }

    #[test]
    fn concat_renumbers_profiles() {
        let a = Thicket::from_profiles(&[profile("A", 1.0)]);
        let b = Thicket::from_profiles(&[profile("B", 2.0)]);
        let c = Thicket::concat(&[a, b]);
        assert_eq!(c.profiles, vec![0, 1]);
        let nid = c.node_by_name("TRIAD").unwrap();
        assert_eq!(c.value("avg#time.duration", nid, 0), Some(1.0));
        assert_eq!(c.value("avg#time.duration", nid, 1), Some(2.0));
        assert_eq!(
            c.metadata[&1]["variant"],
            serde_json::json!("B"),
            "metadata follows renumbered profile"
        );
    }

    #[test]
    fn filter_metadata_selects_profiles() {
        let t = Thicket::from_profiles(&[
            profile("RAJA_Seq", 1.0),
            profile("Base_Seq", 2.0),
            profile("RAJA_Seq", 3.0),
        ]);
        let f = t.filter_metadata(|md| md["variant"] == serde_json::json!("RAJA_Seq"));
        assert_eq!(f.profiles.len(), 2);
        let nid = f.node_by_name("TRIAD").unwrap();
        assert_eq!(f.value("avg#time.duration", nid, 1), None, "dropped");
        assert_eq!(f.value("avg#time.duration", nid, 2), Some(3.0));
    }

    #[test]
    fn groupby_partitions_by_variant() {
        let t = Thicket::from_profiles(&[
            profile("RAJA_Seq", 1.0),
            profile("Base_Seq", 2.0),
            profile("RAJA_Seq", 3.0),
        ]);
        let groups = t.groupby("variant");
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, "Base_Seq");
        assert_eq!(groups[0].1.profiles.len(), 1);
        assert_eq!(groups[1].0, "RAJA_Seq");
        assert_eq!(groups[1].1.profiles.len(), 2);
    }

    #[test]
    fn stats_aggregate_across_profiles() {
        let mut t = Thicket::from_profiles(&[
            profile("a", 1.0),
            profile("b", 2.0),
            profile("c", 6.0),
        ]);
        let nid = t.node_by_name("TRIAD").unwrap();
        let mean_col = t.stats("avg#time.duration", Stat::Mean);
        assert_eq!(t.stat_value(&mean_col, nid), Some(3.0));
        let med_col = t.stats("avg#time.duration", Stat::Median);
        assert_eq!(t.stat_value(&med_col, nid), Some(2.0));
        let min_col = t.stats("avg#time.duration", Stat::Min);
        assert_eq!(t.stat_value(&min_col, nid), Some(1.0));
        let max_col = t.stats("avg#time.duration", Stat::Max);
        assert_eq!(t.stat_value(&max_col, nid), Some(6.0));
        let std_col = t.stats("avg#time.duration", Stat::Std);
        let expected_std = ((4.0 + 1.0 + 9.0) / 3.0f64).sqrt();
        assert!((t.stat_value(&std_col, nid).unwrap() - expected_std).abs() < 1e-12);
    }

    #[test]
    fn stats_on_missing_data_is_nan() {
        let mut t = Thicket::from_profiles(&[profile("a", 1.0)]);
        let root = t.node_by_name("RAJAPerf").unwrap();
        let col = t.stats("avg#time.duration", Stat::Mean);
        assert!(t.stat_value(&col, root).unwrap().is_nan());
    }

    #[test]
    fn caliper_json_parses() {
        let text = r#"{
            "globals": {"variant": "RAJA_Seq"},
            "records": [
                {"path": ["RAJAPerf", "ADD"], "metrics": {"count": 3.0}}
            ]
        }"#;
        let p = ProfileData::from_caliper_json(text).unwrap();
        assert_eq!(p.globals["variant"], serde_json::json!("RAJA_Seq"));
        assert_eq!(p.records.len(), 1);
        let t = Thicket::from_profiles(&[p]);
        let nid = t.node_by_name("ADD").unwrap();
        assert_eq!(t.value("count", nid, 0), Some(3.0));
    }

    #[test]
    fn tree_renders_hierarchy() {
        let t = Thicket::from_profiles(&[profile("v", 1.5)]);
        let text = t.tree("avg#time.duration");
        assert!(text.contains("RAJAPerf"));
        assert!(text.contains("TRIAD"));
        assert!(text.contains("1.5"));
    }

    #[test]
    fn percentile_stat_interpolates() {
        let mut t = Thicket::from_profiles(&[
            profile("a", 1.0),
            profile("b", 2.0),
            profile("c", 3.0),
            profile("d", 4.0),
        ]);
        let nid = t.node_by_name("TRIAD").unwrap();
        let p25 = t.stats("avg#time.duration", Stat::Percentile(0.25));
        assert!((t.stat_value(&p25, nid).unwrap() - 1.75).abs() < 1e-12);
        let p100 = t.stats("avg#time.duration", Stat::Percentile(1.0));
        assert_eq!(t.stat_value(&p100, nid), Some(4.0));
    }

    #[test]
    fn query_and_filter_nodes() {
        let t = Thicket::from_profiles(&[profile("v", 1.0)]);
        assert_eq!(t.query_nodes("TRIAD").len(), 1);
        assert_eq!(t.query_nodes("RAJA").len(), 1, "matches the root node");
        let f = t.filter_nodes("TRIAD");
        assert_eq!(f.nodes.len(), 1);
        assert_eq!(f.value("avg#time.duration", 0, 0), Some(1.0));
    }

    #[test]
    fn csv_export_has_rows_and_columns() {
        let t = Thicket::from_profiles(&[profile("a", 1.0), profile("b", 2.0)]);
        let csv = t.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("node,profile"));
        assert!(header.contains("avg#time.duration"));
        // Only the TRIAD node carries metrics: 2 data rows.
        assert_eq!(lines.count(), 2);
        assert!(!t.column_names().is_empty());
    }

    #[test]
    fn corrupt_profile_json_is_an_error_not_a_panic() {
        assert!(ProfileData::from_caliper_json("{not json").is_err());
        assert!(ProfileData::from_caliper_json(r#"{"globals": {}}"#).is_err());
        let missing = std::path::Path::new("/nonexistent/profile.cali.json");
        assert!(ProfileData::read_file(missing).is_err());
    }

    #[test]
    fn heatmap_shades_extremes() {
        let t = Thicket::from_profiles(&[profile("a", 1.0), profile("b", 9.0)]);
        let hm = t.heatmap("avg#time.duration");
        // The TRIAD row has a min cell '.' and a max cell '#'.
        let row = hm.lines().find(|l| l.contains("TRIAD")).unwrap();
        assert!(row.starts_with(".#"), "{row}");
        // Root node has no data for the column: skipped entirely.
        assert!(!hm.contains("RAJAPerf\n") || hm.lines().count() >= 2);
    }

    #[test]
    fn row_count_counts_touched_rows() {
        let t = Thicket::from_profiles(&[profile("a", 1.0), profile("b", 2.0)]);
        // Root has no metrics; TRIAD × 2 profiles = 2 rows.
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn profile_ids_stay_unique_after_filtering() {
        let mut t = Thicket::from_profiles(&[
            profile("keep", 1.0),
            profile("drop", 2.0),
            profile("keep", 3.0),
        ]);
        // Filter leaves ids {0, 2}; the next ingest must not reuse id 2.
        t = t.filter_metadata(|md| md["variant"] == serde_json::json!("keep"));
        assert_eq!(t.profiles, vec![0, 2]);
        t.ingest(&profile("new", 4.0));
        assert_eq!(t.profiles, vec![0, 2, 3], "max+1 allocation, not len");
    }

    /// Perf regression: concat used to re-scan the node list per record
    /// (O(nodes²·columns)); with the path index, composing the 12-cell
    /// sweep's worth of full-registry thickets is effectively instant.
    #[test]
    fn concat_of_sweep_sized_thickets_is_fast() {
        // 12 sweep cells × one profile over a 600-node call tree with 8
        // metric columns each — the shape `rajaperf --sweep` produces.
        let cells: Vec<Thicket> = (0..12)
            .map(|cell| {
                let mut globals = BTreeMap::new();
                globals.insert("variant".to_string(), serde_json::json!(format!("v{cell}")));
                let records = (0..600)
                    .map(|k| {
                        let mut metrics = BTreeMap::new();
                        for m in 0..8 {
                            metrics.insert(format!("metric{m}"), (cell * 600 + k) as f64 + m as f64);
                        }
                        (
                            vec!["RAJAPerf".to_string(), format!("group{}", k % 20), format!("kernel{k}")],
                            metrics,
                        )
                    })
                    .collect();
                Thicket::from_profiles(&[ProfileData { globals, records }])
            })
            .collect();
        // Deliberately real wall-clock: this asserts an actual performance
        // bound on concat, which a virtual clock would trivialize.
        #[allow(clippy::disallowed_methods)]
        let start = std::time::Instant::now();
        let combined = Thicket::concat(&cells);
        let elapsed = start.elapsed();
        assert_eq!(combined.profiles.len(), 12);
        assert_eq!(combined.nodes.len(), 600, "node set is unioned, not duplicated");
        let nid = combined.node_by_name("kernel17").unwrap();
        assert_eq!(combined.value("metric0", nid, 0), Some(17.0));
        assert_eq!(combined.value("metric0", nid, 11), Some((11 * 600 + 17) as f64));
        assert!(
            elapsed < std::time::Duration::from_secs(1),
            "sweep-sized concat took {elapsed:?}; the path index should make it well under a second"
        );
    }
}
