//! Per-profile feature extraction for corpus-scale clustering.
//!
//! The paper clusters *kernels* by top-down tuples (Fig. 6); the Thicket
//! kernel-similarity follow-on (McKinsey et al.) clusters across whole
//! corpora. To cluster thousands of *profiles* we reduce each profile to a
//! fixed-length feature vector: summary statistics of one metric column per
//! kernel family (the leaf-name prefix before the first `_`, e.g. `Stream`
//! from `Stream_TRIAD`). The extraction is a single scan over the columnar
//! frame, so it stays O(rows) no matter how many profiles the corpus holds.

use crate::{id32, Thicket};
use std::collections::BTreeMap;

/// A profiles × features matrix ready for `hierclust` (standardize with
/// `hierclust::standardize`, then feed `hierclust::linkage`).
#[derive(Debug, Clone)]
pub struct FeatureMatrix {
    /// Profile ids, one per row of `points` (ascending).
    pub profiles: Vec<usize>,
    /// Feature names, one per column of `points` (`"<family>:mean"` /
    /// `"<family>:max"`).
    pub names: Vec<String>,
    /// The feature vectors.
    pub points: Vec<Vec<f64>>,
}

/// Extract per-profile features from `column`: for every kernel family
/// observed in the call tree, the mean and max of the column's values over
/// that family's nodes. Profiles that never observed a family get 0.0 for
/// its features (documented sentinel: clustering distances treat absence as
/// zero cost).
pub fn kernel_family_features(t: &Thicket, column: &str) -> FeatureMatrix {
    // Family per node, and the ordered family universe.
    let mut family_ids: BTreeMap<String, usize> = BTreeMap::new();
    let node_family: Vec<String> = t
        .nodes
        .iter()
        .map(|n| {
            let leaf = n.name();
            leaf.split('_').next().unwrap_or(leaf).to_string()
        })
        .collect();
    for fam in &node_family {
        let next = family_ids.len();
        family_ids.entry(fam.clone()).or_insert(next);
    }
    // BTreeMap iteration is sorted by name; re-id families in sorted order
    // so feature columns are deterministic and readable.
    let families: Vec<String> = family_ids.keys().cloned().collect();
    let fam_rank: BTreeMap<&str, usize> = families
        .iter()
        .enumerate()
        .map(|(i, f)| (f.as_str(), i))
        .collect();
    let node_fam: Vec<usize> = node_family.iter().map(|f| fam_rank[f.as_str()]).collect();

    let profiles = t.profiles.clone();
    let prof_rank: std::collections::HashMap<u32, usize> = profiles
        .iter()
        .enumerate()
        .map(|(i, &p)| (id32(p), i))
        .collect();

    // One accumulator cell per (profile, family): sum, count, max.
    let nf = families.len();
    let mut sum = vec![0.0f64; profiles.len() * nf];
    let mut count = vec![0usize; profiles.len() * nf];
    let mut max = vec![f64::NEG_INFINITY; profiles.len() * nf];

    let fv = t.frame_view();
    if let Some(col) = fv.columns().get(column) {
        for (pos, &(nid, pid)) in fv.rows().iter().enumerate() {
            let Some(v) = col.get(pos) else { continue };
            let cell = prof_rank[&pid] * nf + node_fam[nid as usize];
            sum[cell] += v;
            count[cell] += 1;
            if v > max[cell] {
                max[cell] = v;
            }
        }
    }

    let mut names = Vec::with_capacity(nf * 2);
    for f in &families {
        names.push(format!("{f}:mean"));
        names.push(format!("{f}:max"));
    }
    let points: Vec<Vec<f64>> = (0..profiles.len())
        .map(|pi| {
            let mut row = Vec::with_capacity(nf * 2);
            for fi in 0..nf {
                let cell = pi * nf + fi;
                if count[cell] > 0 {
                    row.push(sum[cell] / count[cell] as f64);
                    row.push(max[cell]);
                } else {
                    row.push(0.0);
                    row.push(0.0);
                }
            }
            row
        })
        .collect();

    FeatureMatrix {
        profiles,
        names,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProfileData;

    fn profile(stream_t: f64, basic_t: f64) -> ProfileData {
        let mut records = Vec::new();
        for (leaf, v) in [("Stream_TRIAD", stream_t), ("Stream_ADD", stream_t * 2.0), ("Basic_DAXPY", basic_t)] {
            let mut metrics = std::collections::BTreeMap::new();
            metrics.insert("t".to_string(), v);
            records.push((vec!["RAJAPerf".to_string(), leaf.to_string()], metrics));
        }
        ProfileData {
            globals: Default::default(),
            records,
        }
    }

    #[test]
    fn features_summarize_per_family() {
        let t = Thicket::from_profiles(&[profile(1.0, 10.0), profile(3.0, 30.0)]);
        let fm = kernel_family_features(&t, "t");
        assert_eq!(fm.profiles, vec![0, 1]);
        // Families sorted: Basic, Stream (no record carries the bare root
        // path, so no root node — and no root family — exists).
        assert_eq!(
            fm.names,
            vec!["Basic:mean", "Basic:max", "Stream:mean", "Stream:max"]
        );
        // Profile 0: Basic mean/max 10; Stream values {1, 2} => mean 1.5
        // max 2.
        assert_eq!(fm.points[0], vec![10.0, 10.0, 1.5, 2.0]);
        assert_eq!(fm.points[1], vec![30.0, 30.0, 4.5, 6.0]);
    }
}
