//! Kernel execution signatures: the structural inputs to the models.

use serde::{Deserialize, Serialize};

/// Asymptotic work complexity relative to the stored problem size, as
/// annotated in Table I. Drives the per-rank decomposition rule: a rank
/// holding `n` elements of an O(N^{3/2}) kernel performs `n^{3/2}` work, so
/// machines using fewer, larger ranks do more total work — the paper's
/// observation about the Polybench matrix kernels on GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Complexity {
    /// O(N): work linear in the data size (most kernels).
    N,
    /// O(N·lg N): sorts.
    NLogN,
    /// O(N^{3/2}): matrix-matrix style kernels (N is the matrix storage).
    NSqrtN,
    /// O(N^{2/3}): surface-proportional work (halo exchanges).
    NTwoThirds,
}

impl Complexity {
    /// Human-readable label matching Table I.
    pub fn label(&self) -> &'static str {
        match self {
            Complexity::N => "n",
            Complexity::NLogN => "n lg n",
            Complexity::NSqrtN => "n^3/2",
            Complexity::NTwoThirds => "n^2/3",
        }
    }

    /// Work units for a problem of `n` stored elements.
    pub fn work(&self, n: f64) -> f64 {
        match self {
            Complexity::N => n,
            Complexity::NLogN => n * n.max(2.0).log2(),
            Complexity::NSqrtN => n * n.sqrt(),
            Complexity::NTwoThirds => n.powf(2.0 / 3.0),
        }
    }
}

/// The structural execution signature of one kernel at one problem size.
///
/// All totals are per repetition (one full pass of the kernel over its
/// problem), matching RAJAPerf's per-rep analytic metrics. The counts are
/// *exact* where RAJAPerf reports them (FLOPs, bytes) and *derived from the
/// loop structure* for the microarchitectural descriptors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecSignature {
    /// Kernel name (`Group_KERNEL` form, e.g. `Stream_TRIAD`).
    pub name: String,
    /// Problem size (stored elements) this signature was computed for.
    pub problem_size: usize,
    /// Floating-point operations per rep (RAJAPerf "FLOPs").
    pub flops: f64,
    /// Bytes read from memory per rep (RAJAPerf "Bytes Read").
    pub bytes_read: f64,
    /// Bytes written to memory per rep (RAJAPerf "Bytes Written").
    pub bytes_written: f64,
    /// Loop iterations per rep (innermost bodies executed).
    pub iterations: f64,
    /// Integer/address ALU operations per iteration beyond loop control.
    pub int_ops_per_iter: f64,
    /// Data-dependent branch instructions per rep.
    pub branches: f64,
    /// Misprediction probability of those branches (0..1).
    pub branch_mispredict_rate: f64,
    /// Fraction of memory traffic served from cache rather than DRAM
    /// (0 = pure streaming, →1 = fully cache-resident reuse).
    pub cache_reuse: f64,
    /// Instruction-footprint pressure on the front end (0 = tiny body,
    /// →1 = very large unrolled/inlined body, e.g. 3-D finite-element
    /// kernels).
    pub icache_pressure: f64,
    /// Atomic read-modify-write operations per rep.
    pub atomics: f64,
    /// Fraction of the atomic ops that contend for the same address
    /// (1.0 = all threads hammer one location, as in PI_ATOMIC; 0.0 =
    /// disjoint per-element atomics, which devices absorb at full rate).
    pub atomic_contention: f64,
    /// Device kernel launches per rep (GPU back-ends; >1 for multi-pass
    /// algorithms and the fused/unfused halo packing variants).
    pub kernel_launches: f64,
    /// Point-to-point messages per rep (Comm kernels).
    pub mpi_messages: f64,
    /// Bytes exchanged over the network per rep.
    pub mpi_bytes: f64,
    /// FP throughput this kernel's FP work can sustain relative to the
    /// machine's measured dense-kernel ceiling (`Basic_MAT_MAT_SHARED`,
    /// Table II). 1.0 = sustains the MAT_MAT rate; values above 1.0 are
    /// possible for FMA-dense bodies that outrun the tiled matmul (the
    /// paper measures Apps_EDGE3D at 84 TFLOPS vs MAT_MAT's 13.3 on
    /// MI250X).
    pub flop_efficiency: f64,
    /// GPU-specific override of [`ExecSignature::flop_efficiency`]; set for
    /// kernels whose FP efficiency differs qualitatively on devices (huge
    /// straight-line FE bodies, atomic-heavy loops).
    pub gpu_flop_efficiency: Option<f64>,
    /// Fraction of GPU memory bandwidth usable given the kernel's access
    /// pattern (1.0 = fully coalesced streaming; small values for
    /// column-strided / sweep-ordered access that wastes sectors). Ignored
    /// on CPUs, whose caches hide strided access far better — this is what
    /// makes the paper's exception kernels (ATAX, GEMVER, GESUMMV, MVT,
    /// ADI) fail to speed up on GPUs despite being memory-bound on CPUs.
    pub gpu_coalescing: f64,
    /// Work complexity annotation (Table I).
    pub complexity: Complexity,
}

impl ExecSignature {
    /// A neutral baseline signature for a streaming kernel of `n` elements;
    /// kernels override the fields their structure dictates.
    pub fn streaming(name: &str, n: usize) -> ExecSignature {
        ExecSignature {
            name: name.to_string(),
            problem_size: n,
            flops: 0.0,
            bytes_read: 0.0,
            bytes_written: 0.0,
            iterations: n as f64,
            int_ops_per_iter: 1.0,
            branches: 0.0,
            branch_mispredict_rate: 0.0,
            cache_reuse: 0.0,
            icache_pressure: 0.05,
            atomics: 0.0,
            atomic_contention: 1.0,
            kernel_launches: 1.0,
            mpi_messages: 0.0,
            mpi_bytes: 0.0,
            flop_efficiency: 0.25,
            gpu_flop_efficiency: None,
            gpu_coalescing: 1.0,
            complexity: Complexity::N,
        }
    }

    /// Total memory traffic per rep.
    pub fn bytes_total(&self) -> f64 {
        self.bytes_read + self.bytes_written
    }

    /// Traffic that reaches DRAM per rep (after cache reuse).
    pub fn dram_bytes(&self) -> f64 {
        self.bytes_total() * (1.0 - self.cache_reuse)
    }

    /// FLOPs per byte of memory touched (RAJAPerf's derived metric).
    pub fn flops_per_byte(&self) -> f64 {
        let b = self.bytes_total();
        if b > 0.0 {
            self.flops / b
        } else {
            0.0
        }
    }

    /// Estimated dynamic micro-operations per rep: FP + loads + stores +
    /// integer work + branches + loop control + atomic RMW expansion.
    pub fn uops(&self) -> f64 {
        let loads = self.bytes_read / 8.0;
        let stores = self.bytes_written / 8.0;
        self.flops
            + loads
            + stores
            + self.int_ops_per_iter * self.iterations
            + self.branches
            + 2.0 * self.iterations // loop increment + compare/branch
            + 4.0 * self.atomics // RMW expands to load+op+store-conditional+retry
    }

    /// Effective SIMD packing of the μop stream: regular, vectorizable FP
    /// bodies retire several elements per μop (AVX-512 packs 8 doubles);
    /// branchy or indirect bodies stay scalar. Derived from the
    /// sustained-FP-rate descriptor, which tracks vectorizability.
    pub fn simd_packing(&self) -> f64 {
        1.0 + 5.0 * self.flop_efficiency.min(1.2)
    }

    /// Scale the per-rep counts for a sub-problem of `n` elements, using the
    /// complexity annotation for work terms and linear scaling for storage
    /// terms. Used by the per-rank decomposition in `predict`.
    pub fn scaled_to(&self, n: usize) -> ExecSignature {
        let full = self.problem_size.max(1) as f64;
        let storage_ratio = n as f64 / full;
        let work_ratio = self.complexity.work(n as f64) / self.complexity.work(full);
        ExecSignature {
            name: self.name.clone(),
            problem_size: n,
            flops: self.flops * work_ratio,
            bytes_read: self.bytes_read * work_ratio,
            bytes_written: self.bytes_written * storage_ratio,
            iterations: self.iterations * work_ratio,
            branches: self.branches * work_ratio,
            atomics: self.atomics * work_ratio,
            mpi_bytes: self.mpi_bytes * storage_ratio.powf(2.0 / 3.0),
            // Message count, launches, rates and fractions are size-free.
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complexity_work_functions() {
        assert_eq!(Complexity::N.work(100.0), 100.0);
        assert_eq!(Complexity::NSqrtN.work(100.0), 1000.0);
        assert!((Complexity::NLogN.work(8.0) - 24.0).abs() < 1e-12);
        assert!((Complexity::NTwoThirds.work(1000.0) - 100.0).abs() < 1e-9);
        assert_eq!(Complexity::NSqrtN.label(), "n^3/2");
    }

    #[test]
    fn derived_metrics() {
        let mut s = ExecSignature::streaming("k", 1000);
        s.flops = 2000.0;
        s.bytes_read = 16000.0;
        s.bytes_written = 8000.0;
        s.cache_reuse = 0.5;
        assert_eq!(s.bytes_total(), 24000.0);
        assert_eq!(s.dram_bytes(), 12000.0);
        assert!((s.flops_per_byte() - 2000.0 / 24000.0).abs() < 1e-12);
        assert!(s.uops() > s.flops, "uops include memory and loop overhead");
    }

    #[test]
    fn flops_per_byte_zero_bytes() {
        let mut s = ExecSignature::streaming("k", 10);
        s.flops = 100.0;
        assert_eq!(s.flops_per_byte(), 0.0);
    }

    #[test]
    fn scaling_linear_kernel_is_proportional() {
        let mut s = ExecSignature::streaming("k", 1000);
        s.flops = 1000.0;
        s.bytes_read = 8000.0;
        let half = s.scaled_to(500);
        assert!((half.flops - 500.0).abs() < 1e-9);
        assert!((half.bytes_read - 4000.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_superlinear_kernel_does_relatively_more_work_per_element() {
        let mut s = ExecSignature::streaming("mm", 1024);
        s.complexity = Complexity::NSqrtN;
        s.flops = Complexity::NSqrtN.work(1024.0);
        let quarter = s.scaled_to(256);
        // Work per element shrinks as sqrt(n): 256 elements do
        // 256^{1.5}/1024^{1.5} = 1/8 of the work, not 1/4.
        assert!((quarter.flops / s.flops - 0.125).abs() < 1e-12);
        // Consequence: 4 ranks of 256 do 4/8 = half the flops of 1 rank of
        // 1024 — more ranks, less total work, as the paper notes inversely
        // for GPUs.
        assert!((4.0 * quarter.flops) < s.flops);
    }

    #[test]
    fn atomics_increase_uops() {
        let mut a = ExecSignature::streaming("k", 100);
        let mut b = a.clone();
        a.atomics = 0.0;
        b.atomics = 100.0;
        assert!(b.uops() > a.uops());
    }
}
