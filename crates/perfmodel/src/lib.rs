//! Analytic performance models for the four evaluation machines.
//!
//! The paper's evaluation hardware — Sapphire Rapids nodes with DDR and HBM,
//! Sierra's P9+V100 nodes, and Tioga's EPYC+MI250X nodes — and its
//! measurement stacks (PAPI top-down counters, Nsight Compute roofline
//! counters) do not exist in this environment. This crate substitutes
//! analytic models driven by each kernel's [`signature::ExecSignature`]
//! (exact per-rep byte/FLOP counts plus structural instruction-mix
//! descriptors computed by the `kernels` crate):
//!
//! * [`machine`] — descriptors of the four systems with Table II's
//!   peak/achieved FLOPS and bandwidth and Table III's run parameters.
//! * [`tma`] — the Intel Top-down Microarchitecture Analysis slot model
//!   (Fig. 2 hierarchy; Figs. 3/4 per-kernel breakdowns): pipeline-slot
//!   attribution into Frontend / Bad Speculation / Retiring / Core-bound /
//!   Memory-bound derived from cycle-demand accounting.
//! * [`roofline`] — the Ding & Williams instruction-roofline model for GPUs
//!   (Table IV metrics; Fig. 5): warp instructions, L1/L2/HBM transactions,
//!   and machine ceilings.
//! * [`predict`] — the execution-time model (roofline time + launch
//!   overhead + MPI time, with per-rank decomposition) behind the speedup
//!   analyses of Figs. 7–10.
//!
//! The models are *structural*: every input is either a hardware constant
//! from the paper's Table II / vendor documentation or a quantity computed
//! from the kernel's actual loop structure. No per-figure tuning exists; the
//! paper's qualitative results (memory-bound kernels gain most from HBM,
//! FLOP-bound kernels gain more from GPUs, atomic- and launch-bound kernels
//! gain little) emerge from the cycle accounting.

pub mod machine;
pub mod predict;
pub mod roofline;
pub mod scaling;
pub mod signature;
pub mod tma;

pub use machine::{Machine, MachineId, MachineKind};
pub use predict::{predict_time, speedup, PredictedTime};
pub use roofline::{roofline_point, CacheLevel, RooflinePoint};
pub use scaling::{strong_scaling, weak_scaling, ScalePoint};
pub use signature::{Complexity, ExecSignature};
pub use tma::{tma_breakdown, TmaBreakdown};
