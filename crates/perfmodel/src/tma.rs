//! Top-down Microarchitecture Analysis (TMA) slot model for the CPU
//! systems.
//!
//! The paper collects Intel's top-down counters through PAPI and analyses
//! the top two hierarchy levels (Fig. 2): **Frontend Bound**, **Bad
//! Speculation**, **Retiring**, and **Backend Bound**, the latter split into
//! **Core Bound** and **Memory Bound** (§III-A). Without the hardware, we
//! reproduce the attribution analytically from cycle-demand accounting:
//!
//! * `retire_cycles` — μops / issue width, divided by the kernel's SIMD
//!   packing (regular, vectorizable bodies retire several elements per
//!   μop), plus serialized atomic RMW latency (atomics retire slowly but
//!   *do* retire, which is why the paper sees `PI_ATOMIC` as extremely
//!   retiring-bound);
//! * `fp_cycles` — FP work at the kernel's sustainable FP rate: saturated
//!   FP ports show up as **Core Bound** when they exceed both retire and
//!   memory demand (the paper's 2MM/ATAX observation);
//! * `mem_cycles` — DRAM traffic at the core's share of sustained
//!   bandwidth: bandwidth saturation shows up as **Memory Bound**, and is
//!   directly relieved by the HBM machine's higher per-core bytes/cycle
//!   (the paper's central SCAN/GESUMMV observation in Figs. 3–4);
//! * `fe_cycles` — instruction-delivery pressure proportional to body
//!   footprint (the large finite-element App kernels);
//! * `bs_cycles` — branch misprediction recovery.
//!
//! Fractions are slots over `total = max(retire, fp, mem) + fe + bs`; the
//! backend stall `max(...) − retire` is split between Memory and Core in
//! proportion to each resource's excess demand. The five fractions sum
//! to 1.

use crate::machine::{Machine, MachineKind};
use crate::signature::ExecSignature;
use serde::{Deserialize, Serialize};

/// Branch misprediction recovery penalty, cycles (typical for modern OoO).
const MISPREDICT_PENALTY: f64 = 15.0;

/// Serialized atomic read-modify-write latency, cycles.
const ATOMIC_LATENCY: f64 = 20.0;

/// The top-two-level TMA breakdown. Fractions of pipeline slots; sums to 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TmaBreakdown {
    /// Instruction fetch/decode starvation.
    pub frontend_bound: f64,
    /// Slots wasted on mispredicted paths.
    pub bad_speculation: f64,
    /// Slots retiring useful μops.
    pub retiring: f64,
    /// Backend stalls from core-resource (FP port) saturation.
    pub core_bound: f64,
    /// Backend stalls from memory-subsystem saturation.
    pub memory_bound: f64,
}

impl TmaBreakdown {
    /// The five metrics as the tuple used for clustering (§IV):
    /// `[frontend, bad_speculation, retiring, core, memory]`.
    pub fn tuple(&self) -> [f64; 5] {
        [
            self.frontend_bound,
            self.bad_speculation,
            self.retiring,
            self.core_bound,
            self.memory_bound,
        ]
    }

    /// Level-1 Backend Bound = Core + Memory.
    pub fn backend_bound(&self) -> f64 {
        self.core_bound + self.memory_bound
    }

    /// Sum of all five fractions (1.0 up to rounding).
    pub fn sum(&self) -> f64 {
        self.frontend_bound + self.bad_speculation + self.retiring + self.core_bound
            + self.memory_bound
    }
}

/// Compute the TMA breakdown for `sig` running one rank's share on a CPU
/// machine.
///
/// # Panics
/// Panics when called for a GPU machine — the paper (and this model) uses
/// the instruction roofline there instead.
pub fn tma_breakdown(machine: &Machine, sig: &ExecSignature) -> TmaBreakdown {
    assert!(
        machine.kind == MachineKind::Cpu,
        "TMA applies to CPU machines; use the roofline model for GPUs"
    );
    // Per-rank share of the problem; on the CPU systems one rank = one core.
    let n_rank = (sig.problem_size / machine.ranks).max(1);
    let s = sig.scaled_to(n_rank);

    // Cycle demands per core.
    let retire_cycles =
        s.uops() / machine.issue_width / s.simd_packing() + s.atomics * ATOMIC_LATENCY;
    let fp_per_cycle_peak =
        machine.peak_flops_node / machine.cores_per_node as f64 / machine.freq_hz;
    let fp_rate = (fp_per_cycle_peak * s.flop_efficiency)
        .clamp(1e-3, fp_per_cycle_peak);
    let fp_cycles = s.flops / fp_rate;
    let bytes_per_cycle =
        machine.achieved_bw_node / machine.cores_per_node as f64 / machine.freq_hz;
    // Stores retire through the store buffer and rarely stall issue, so
    // write traffic contributes far less to Memory Bound than read misses
    // (this is why the paper sees write-only kernels like INIT_VIEW1D and
    // NESTED_INIT as retiring-bound rather than memory-bound).
    const WRITE_STALL_FACTOR: f64 = 0.15;
    let read_dram = s.bytes_read * (1.0 - s.cache_reuse);
    let write_dram = s.bytes_written * (1.0 - s.cache_reuse);
    let mem_cycles = (read_dram + WRITE_STALL_FACTOR * write_dram) / bytes_per_cycle;
    let fe_cycles = s.icache_pressure * (s.uops() / machine.issue_width / s.simd_packing());
    let bs_cycles = s.branches * s.branch_mispredict_rate * MISPREDICT_PENALTY;

    let bottleneck = retire_cycles.max(fp_cycles).max(mem_cycles);
    let total = (bottleneck + fe_cycles + bs_cycles).max(1e-12);

    let backend_stall = bottleneck - retire_cycles;
    let mem_excess = (mem_cycles - retire_cycles).max(0.0);
    let core_excess = (fp_cycles - retire_cycles).max(0.0);
    let excess = mem_excess + core_excess;
    let (memory_bound, core_bound) = if backend_stall > 0.0 && excess > 0.0 {
        (
            backend_stall * (mem_excess / excess) / total,
            backend_stall * (core_excess / excess) / total,
        )
    } else {
        (0.0, 0.0)
    };

    TmaBreakdown {
        frontend_bound: fe_cycles / total,
        bad_speculation: bs_cycles / total,
        retiring: retire_cycles / total,
        core_bound,
        memory_bound,
    }
}

/// One node of the TMA hierarchy (Fig. 2).
#[derive(Debug, Clone)]
pub struct TmaNode {
    /// Category name.
    pub name: &'static str,
    /// What the category measures.
    pub description: &'static str,
    /// Sub-categories.
    pub children: Vec<TmaNode>,
}

/// The top-down hierarchy of Fig. 2, down to the levels the paper uses
/// (plus the memory-level split it mentions).
pub fn tma_hierarchy() -> TmaNode {
    TmaNode {
        name: "Pipeline Slots",
        description: "all issue slots of the out-of-order core",
        children: vec![
            TmaNode {
                name: "Frontend Bound",
                description: "instruction fetch latency and bandwidth",
                children: vec![
                    leaf("Fetch Latency", "icache/iTLB misses, branch resteers"),
                    leaf("Fetch Bandwidth", "decoder throughput"),
                ],
            },
            TmaNode {
                name: "Bad Speculation",
                description: "costs of the CPU's predictive mechanisms",
                children: vec![
                    leaf("Branch Mispredicts", "wrong-path execution"),
                    leaf("Machine Clears", "memory-ordering or SMC clears"),
                ],
            },
            TmaNode {
                name: "Retiring",
                description: "rate of completing and retiring instructions",
                children: vec![leaf("Base", "regular μops"), leaf("Microcode", "MS-ROM μops")],
            },
            TmaNode {
                name: "Backend Bound",
                description: "delays from data or execution-resource availability",
                children: vec![
                    TmaNode {
                        name: "Core Bound",
                        description: "saturation within the CPU core (FP ports, dividers)",
                        children: vec![],
                    },
                    TmaNode {
                        name: "Memory Bound",
                        description: "saturation within the memory subsystem",
                        children: vec![
                            leaf("L1 Bound", "L1 data-cache stalls"),
                            leaf("L2 Bound", "L2 stalls"),
                            leaf("L3 Bound", "L3 stalls"),
                            leaf("DRAM Bound", "external memory bandwidth/latency"),
                        ],
                    },
                ],
            },
        ],
    }
}

fn leaf(name: &'static str, description: &'static str) -> TmaNode {
    TmaNode {
        name,
        description,
        children: vec![],
    }
}

impl TmaNode {
    /// Render the hierarchy as an indented text tree (the Fig. 2 stand-in).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        out.push_str(&format!(
            "{}{} — {}\n",
            "  ".repeat(depth),
            self.name,
            self.description
        ));
        for c in &self.children {
            c.render_into(depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineId;
    use crate::signature::ExecSignature;

    /// A TRIAD-like streaming signature at node scale (32M doubles).
    fn triad_sig() -> ExecSignature {
        let n = 32_000_000usize;
        let mut s = ExecSignature::streaming("Stream_TRIAD", n);
        s.flops = 2.0 * n as f64;
        s.bytes_read = 16.0 * n as f64;
        s.bytes_written = 8.0 * n as f64;
        s
    }

    /// A dense-matmul-like signature (high flops/byte, high reuse).
    fn matmul_sig() -> ExecSignature {
        let n = 32_000_000usize;
        let mut s = ExecSignature::streaming("Basic_MAT_MAT_SHARED", n);
        s.complexity = crate::signature::Complexity::NSqrtN;
        s.flops = 2.0 * (n as f64).powf(1.5);
        s.bytes_read = 16.0 * n as f64;
        s.bytes_written = 8.0 * n as f64;
        s.cache_reuse = 0.9;
        s.flop_efficiency = 1.0;
        s
    }

    /// A PI_ATOMIC-like signature: no arrays, one atomic per iteration.
    fn atomic_sig() -> ExecSignature {
        let n = 32_000_000usize;
        let mut s = ExecSignature::streaming("Basic_PI_ATOMIC", n);
        s.flops = 4.0 * n as f64;
        s.atomics = n as f64;
        s
    }

    #[test]
    fn fractions_sum_to_one() {
        let m = Machine::get(MachineId::SprDdr);
        for sig in [triad_sig(), matmul_sig(), atomic_sig()] {
            let t = tma_breakdown(&m, &sig);
            assert!((t.sum() - 1.0).abs() < 1e-9, "{sig:?} sums to {}", t.sum());
            for v in t.tuple() {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn streaming_kernel_is_memory_bound_on_ddr() {
        let m = Machine::get(MachineId::SprDdr);
        let t = tma_breakdown(&m, &triad_sig());
        assert!(t.memory_bound > 0.7, "TRIAD memory bound: {t:?}");
        assert!(t.retiring < 0.25);
    }

    #[test]
    fn hbm_relieves_memory_bound() {
        let ddr = tma_breakdown(&Machine::get(MachineId::SprDdr), &triad_sig());
        let hbm = tma_breakdown(&Machine::get(MachineId::SprHbm), &triad_sig());
        assert!(
            hbm.memory_bound < ddr.memory_bound - 0.1,
            "DDR {} vs HBM {}",
            ddr.memory_bound,
            hbm.memory_bound
        );
    }

    #[test]
    fn matmul_is_core_or_retire_bound_not_memory_bound() {
        let m = Machine::get(MachineId::SprDdr);
        let t = tma_breakdown(&m, &matmul_sig());
        assert!(t.memory_bound < 0.2, "{t:?}");
        assert!(t.core_bound + t.retiring > 0.6, "{t:?}");
    }

    #[test]
    fn atomic_kernel_is_retiring_bound() {
        let m = Machine::get(MachineId::SprDdr);
        let t = tma_breakdown(&m, &atomic_sig());
        assert!(t.retiring > 0.8, "PI_ATOMIC retiring: {t:?}");
    }

    #[test]
    fn icache_pressure_creates_frontend_bound() {
        let m = Machine::get(MachineId::SprDdr);
        let mut s = triad_sig();
        s.cache_reuse = 0.95; // keep memory out of the way
        s.icache_pressure = 0.5;
        let t = tma_breakdown(&m, &s);
        assert!(t.frontend_bound > 0.2, "{t:?}");
    }

    #[test]
    fn mispredicted_branches_create_bad_speculation() {
        let m = Machine::get(MachineId::SprDdr);
        let mut s = ExecSignature::streaming("branchy", 32_000_000);
        s.branches = s.iterations;
        s.branch_mispredict_rate = 0.2;
        s.cache_reuse = 0.9;
        let t = tma_breakdown(&m, &s);
        assert!(t.bad_speculation > 0.3, "{t:?}");
    }

    #[test]
    #[should_panic(expected = "TMA applies to CPU machines")]
    fn tma_on_gpu_panics() {
        let m = Machine::get(MachineId::P9V100);
        let _ = tma_breakdown(&m, &triad_sig());
    }

    #[test]
    fn hierarchy_has_expected_shape() {
        let h = tma_hierarchy();
        assert_eq!(h.children.len(), 4, "four level-1 categories");
        let backend = &h.children[3];
        assert_eq!(backend.children.len(), 2, "core + memory");
        let text = h.render();
        for name in [
            "Frontend Bound",
            "Bad Speculation",
            "Retiring",
            "Backend Bound",
            "Core Bound",
            "Memory Bound",
            "DRAM Bound",
        ] {
            assert!(text.contains(name), "hierarchy text missing {name}");
        }
    }
}
