//! Execution-time prediction and cross-architecture speedups.
//!
//! The paper's Figs. 7–10 relate each kernel's bottleneck profile to its
//! measured speedup on SPR-HBM, P9-V100 and EPYC-MI250X over the SPR-DDR
//! baseline. We predict per-kernel execution time with a bounded-resource
//! (roofline-style) model:
//!
//! ```text
//! t_rank = max(mem, flop, issue, atomic) + launches·overhead + mpi
//! ```
//!
//! where each term is the rank's work divided by the rank's share of the
//! machine's *sustained* rate (Table II achieved figures). The problem is
//! decomposed over Table III's rank counts, and each rank's work is derived
//! from the kernel's own metric formulas via
//! [`ExecSignature::scaled_to`] — so super-linear kernels automatically do
//! more total work on machines with fewer ranks, reproducing the paper's
//! Polybench-on-GPU caveat.

use crate::machine::{Machine, MachineKind};
use crate::signature::ExecSignature;
use serde::{Deserialize, Serialize};

/// Fraction of theoretical issue bandwidth sustainable by real kernels.
/// GPUs rarely keep every scheduler slot busy on irregular code.
const ISSUE_SUSTAIN_CPU: f64 = 0.8;
const ISSUE_SUSTAIN_GPU: f64 = 0.12;

/// The predicted time and its components, per repetition, seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictedTime {
    /// Total predicted time for one repetition (slowest rank ≈ any rank,
    /// work being balanced).
    pub total_s: f64,
    /// Memory-bandwidth term.
    pub mem_s: f64,
    /// FP-throughput term.
    pub flop_s: f64,
    /// Instruction-issue term.
    pub issue_s: f64,
    /// Atomic-serialization term.
    pub atomic_s: f64,
    /// Kernel-launch overhead term.
    pub launch_s: f64,
    /// Message-passing term.
    pub mpi_s: f64,
}

impl PredictedTime {
    /// The name of the dominant bounded resource.
    pub fn dominant(&self) -> &'static str {
        let pairs = [
            ("memory", self.mem_s),
            ("flops", self.flop_s),
            ("issue", self.issue_s),
            ("atomics", self.atomic_s),
            ("launch", self.launch_s),
            ("mpi", self.mpi_s),
        ];
        pairs
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(n, _)| *n)
            .unwrap_or("memory")
    }
}

/// Achieved memory bandwidth implied by a prediction, B/s per node.
pub fn achieved_bandwidth(machine: &Machine, sig: &ExecSignature, t: &PredictedTime) -> f64 {
    if t.total_s <= 0.0 {
        return 0.0;
    }
    // Total traffic over all ranks divided by wall time.
    let n_rank = (sig.problem_size / machine.ranks).max(1);
    let s = sig.scaled_to(n_rank);
    s.bytes_total() * machine.ranks as f64 / t.total_s
}

/// Achieved FLOP rate implied by a prediction, FLOP/s per node.
pub fn achieved_flops(machine: &Machine, sig: &ExecSignature, t: &PredictedTime) -> f64 {
    if t.total_s <= 0.0 {
        return 0.0;
    }
    let n_rank = (sig.problem_size / machine.ranks).max(1);
    let s = sig.scaled_to(n_rank);
    s.flops * machine.ranks as f64 / t.total_s
}

/// Predict one repetition's execution time for `sig` (given at full node
/// problem size) on `machine`.
pub fn predict_time(machine: &Machine, sig: &ExecSignature) -> PredictedTime {
    let n_rank = (sig.problem_size / machine.ranks).max(1);
    let s = sig.scaled_to(n_rank);

    // Memory: DRAM traffic at the rank's bandwidth share. On GPUs,
    // uncoalesced access wastes sector bandwidth (CPU caches absorb strided
    // access much better, so coalescing only derates device bandwidth).
    let coalescing = match machine.kind {
        MachineKind::Cpu => 1.0,
        MachineKind::Gpu => s.gpu_coalescing.clamp(0.003, 1.0),
    };
    // Shared-bus model: reads and writes queue on the same memory system
    // at their respective sustained rates.
    let read_dram = s.bytes_read * (1.0 - s.cache_reuse);
    let write_dram = s.bytes_written * (1.0 - s.cache_reuse);
    let mem_s = read_dram / (machine.read_bw_per_rank() * coalescing)
        + write_dram / (machine.write_bw_per_rank() * coalescing);

    // FP: at the kernel's sustainable fraction of the machine's measured
    // dense-kernel ceiling, never exceeding 95% of theoretical peak.
    let eff = match machine.kind {
        MachineKind::Cpu => s.flop_efficiency,
        MachineKind::Gpu => s.gpu_flop_efficiency.unwrap_or(s.flop_efficiency),
    };
    // Even FMA-dense straight-line code tops out near ~45% of the
    // theoretical dual-issue peak (the paper's best case, EDGE3D on
    // MI250X, reaches 44%).
    let flop_ceiling = (machine.achieved_flops_node * eff)
        .min(0.45 * machine.peak_flops_node)
        / machine.ranks as f64;
    let flop_s = if s.flops > 0.0 {
        s.flops / flop_ceiling.max(1.0)
    } else {
        0.0
    };

    // Issue: μop stream at sustained issue bandwidth.
    let sustain = match machine.kind {
        MachineKind::Cpu => ISSUE_SUSTAIN_CPU,
        MachineKind::Gpu => ISSUE_SUSTAIN_GPU,
    };
    let issue_s = s.uops() / (machine.uop_rate_per_rank() * sustain * s.simd_packing());

    // Atomics: only the *contended* fraction serializes; disjoint
    // per-element atomics proceed at near-memory rate on both CPUs and
    // devices.
    let atomic_s =
        s.atomics * s.atomic_contention / (machine.atomic_rate / machine.ranks as f64);

    // Launch overhead: per device-kernel launch (zero on CPUs).
    let launch_s = s.kernel_launches * machine.launch_overhead_s;

    // MPI: latency per message plus wire time.
    let mpi_s = s.mpi_messages * machine.net_latency_s + s.mpi_bytes / machine.net_bw;

    let total_s = mem_s.max(flop_s).max(issue_s).max(atomic_s) + launch_s + mpi_s;
    PredictedTime {
        total_s,
        mem_s,
        flop_s,
        issue_s,
        atomic_s,
        launch_s,
        mpi_s,
    }
}

/// Speedup of `machine` over `baseline` for the same kernel signature
/// (values > 1 mean `machine` is faster).
pub fn speedup(baseline: &Machine, machine: &Machine, sig: &ExecSignature) -> f64 {
    let t0 = predict_time(baseline, sig).total_s;
    let t1 = predict_time(machine, sig).total_s;
    if t1 > 0.0 {
        t0 / t1
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineId;
    use crate::signature::{Complexity, ExecSignature};

    fn triad(n: usize) -> ExecSignature {
        let mut s = ExecSignature::streaming("Stream_TRIAD", n);
        s.flops = 2.0 * n as f64;
        s.bytes_read = 16.0 * n as f64;
        s.bytes_written = 8.0 * n as f64;
        s
    }

    fn matmul(n: usize) -> ExecSignature {
        let mut s = ExecSignature::streaming("Basic_MAT_MAT_SHARED", n);
        s.complexity = Complexity::NSqrtN;
        s.flops = 2.0 * (n as f64).powf(1.5);
        s.bytes_read = 16.0 * n as f64;
        s.bytes_written = 8.0 * n as f64;
        s.cache_reuse = 0.95;
        s.flop_efficiency = 1.0;
        s
    }

    const N: usize = 32_000_000;

    #[test]
    fn triad_is_memory_bound_everywhere() {
        for id in MachineId::all() {
            let m = Machine::get(id);
            let t = predict_time(&m, &triad(N));
            assert_eq!(t.dominant(), "memory", "{id:?}: {t:?}");
        }
    }

    #[test]
    fn triad_achieves_the_bandwidth_ceiling() {
        // TRIAD being the bandwidth-ceiling kernel, its achieved bandwidth
        // must come out at the machine's sustained figure.
        for id in MachineId::all() {
            let m = Machine::get(id);
            let sig = triad(N);
            let t = predict_time(&m, &sig);
            let bw = achieved_bandwidth(&m, &sig, &t);
            // Within 10%: GPU timings legitimately include one launch
            // overhead per rep at this problem size.
            assert!(
                (bw / m.achieved_bw_node - 1.0).abs() < 0.10,
                "{id:?}: {bw:e} vs {:e}",
                m.achieved_bw_node
            );
        }
    }

    #[test]
    fn memory_bound_speedups_track_bandwidth_ratios() {
        let ddr = Machine::get(MachineId::SprDdr);
        let sig = triad(N);
        // HBM/DDR sustained bandwidth ratio ≈ 2.2; MI250X/DDR ≈ 20.4.
        let s_hbm = speedup(&ddr, &Machine::get(MachineId::SprHbm), &sig);
        assert!((1.8..2.8).contains(&s_hbm), "HBM speedup {s_hbm}");
        let s_mi = speedup(&ddr, &Machine::get(MachineId::EpycMi250x), &sig);
        assert!((15.0..25.0).contains(&s_mi), "MI250X speedup {s_mi}");
        let s_v100 = speedup(&ddr, &Machine::get(MachineId::P9V100), &sig);
        assert!((5.0..8.5).contains(&s_v100), "V100 speedup {s_v100}");
    }

    #[test]
    fn matmul_achieves_the_flops_ceiling() {
        for id in MachineId::all() {
            let m = Machine::get(id);
            let sig = matmul(N);
            let t = predict_time(&m, &sig);
            let fl = achieved_flops(&m, &sig, &t);
            // flop-bound and the ceiling kernel: achieves ~its ceiling.
            assert_eq!(t.dominant(), "flops", "{id:?}");
            assert!(
                (fl / m.achieved_flops_node - 1.0).abs() < 0.2,
                "{id:?}: {fl:e} vs {:e}",
                m.achieved_flops_node
            );
        }
    }

    #[test]
    fn flop_bound_kernel_gains_little_from_hbm() {
        let ddr = Machine::get(MachineId::SprDdr);
        let hbm = Machine::get(MachineId::SprHbm);
        let s = speedup(&ddr, &hbm, &matmul(N));
        assert!(s < 1.2, "matmul HBM speedup should be ~1: {s}");
    }

    #[test]
    fn superlinear_kernels_do_more_work_on_fewer_ranks() {
        // The same O(N^{3/2}) kernel: per-node total work is larger when
        // decomposed over 8 ranks than over 112 (paper §V-B/C caveat).
        let sig = matmul(N);
        let w_cpu = 112.0 * sig.scaled_to(N / 112).flops;
        let w_gpu = 8.0 * sig.scaled_to(N / 8).flops;
        assert!(w_gpu > 2.0 * w_cpu);
    }

    #[test]
    fn atomic_kernel_does_not_speed_up_on_gpu() {
        let mut s = ExecSignature::streaming("Basic_PI_ATOMIC", N);
        s.flops = 4.0 * N as f64;
        s.atomics = N as f64;
        let ddr = Machine::get(MachineId::SprDdr);
        let v100 = Machine::get(MachineId::P9V100);
        let sp = speedup(&ddr, &v100, &s);
        assert!(sp < 1.5, "PI_ATOMIC V100 speedup {sp}");
    }

    #[test]
    fn launch_bound_kernel_is_penalized_on_gpu() {
        let mut s = ExecSignature::streaming("Comm_HALO_PACKING", 1_000_000);
        s.bytes_read = 8.0 * 1e6;
        s.bytes_written = 8.0 * 1e6;
        s.kernel_launches = 52.0; // one per pack/unpack list
        let v100 = Machine::get(MachineId::P9V100);
        let t = predict_time(&v100, &s);
        assert!(t.launch_s > 0.0);
        assert_eq!(t.dominant(), "launch", "{t:?}");
    }

    #[test]
    fn mpi_term_dominates_comm_kernels() {
        let mut s = ExecSignature::streaming("Comm_HALO_EXCHANGE", N);
        s.mpi_messages = 26.0;
        s.mpi_bytes = 26.0 * 64_000.0;
        s.bytes_read = 1e5;
        let ddr = Machine::get(MachineId::SprDdr);
        let t = predict_time(&ddr, &s);
        assert!(t.mpi_s > t.mem_s, "{t:?}");
    }

    #[test]
    fn components_are_nonnegative_and_total_bounds_max() {
        let m = Machine::get(MachineId::EpycMi250x);
        let t = predict_time(&m, &triad(N));
        for v in [t.mem_s, t.flop_s, t.issue_s, t.atomic_s, t.launch_s, t.mpi_s] {
            assert!(v >= 0.0);
        }
        assert!(t.total_s >= t.mem_s.max(t.flop_s));
    }
}
