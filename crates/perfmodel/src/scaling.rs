//! Scalability prediction (§II-C item 1: "kernel scalability with the
//! increase in computational resources, such as more CPU cores or GPU
//! threads").
//!
//! Strong scaling holds the node problem fixed and varies the resource
//! count; weak scaling grows the problem with the resources. Both reuse the
//! execution-time model with a machine whose rank count (and its share of
//! cores/bandwidth/compute, which already divide by `ranks`) is swept.

use crate::machine::Machine;
use crate::predict::predict_time;
use crate::signature::ExecSignature;

/// One point of a scaling study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalePoint {
    /// Resource count (MPI ranks / GPUs / cores, per the machine's unit).
    pub ranks: usize,
    /// Predicted time per repetition, seconds.
    pub time_s: f64,
    /// Speedup relative to the first point.
    pub speedup: f64,
    /// Parallel efficiency: `speedup / (ranks / ranks₀)`.
    pub efficiency: f64,
}

/// Scale a machine to `ranks` resources: the per-rank shares (bandwidth,
/// FLOPS, cores, atomic throughput) follow automatically because the model
/// divides node totals by `ranks`; the node totals themselves scale with
/// the resource count relative to the machine's nominal configuration.
fn scaled_machine(base: &Machine, ranks: usize) -> Machine {
    let f = ranks as f64 / base.ranks as f64;
    let mut m = base.clone();
    m.ranks = ranks;
    m.cores_per_node = ((base.cores_per_node as f64) * f).round().max(1.0) as usize;
    m.achieved_bw_node *= f;
    m.achieved_read_bw_node *= f;
    m.achieved_write_bw_node *= f;
    m.achieved_flops_node *= f;
    m.peak_flops_node *= f;
    m.peak_bw_node *= f;
    m.atomic_rate *= f;
    m
}

/// Strong scaling: fixed total problem, swept resource count.
pub fn strong_scaling(base: &Machine, sig: &ExecSignature, ranks: &[usize]) -> Vec<ScalePoint> {
    assert!(!ranks.is_empty(), "need at least one rank count");
    let t0 = predict_time(&scaled_machine(base, ranks[0]), sig).total_s;
    ranks
        .iter()
        .map(|&r| {
            let t = predict_time(&scaled_machine(base, r), sig).total_s;
            let speedup = t0 / t;
            ScalePoint {
                ranks: r,
                time_s: t,
                speedup,
                efficiency: speedup / (r as f64 / ranks[0] as f64),
            }
        })
        .collect()
}

/// Weak scaling: the problem grows proportionally with the resources, so
/// ideal behaviour is constant time (efficiency = t₀ / t).
pub fn weak_scaling(
    base: &Machine,
    sig_per_rank: &ExecSignature,
    ranks: &[usize],
) -> Vec<ScalePoint> {
    assert!(!ranks.is_empty(), "need at least one rank count");
    let per_rank_n = sig_per_rank.problem_size;
    let mut out = Vec::with_capacity(ranks.len());
    let mut t0 = 0.0;
    for (i, &r) in ranks.iter().enumerate() {
        // Total problem = per-rank size × ranks; the model re-splits it.
        let total = sig_per_rank.scaled_to(per_rank_n * r);
        let t = predict_time(&scaled_machine(base, r), &total).total_s;
        if i == 0 {
            t0 = t;
        }
        out.push(ScalePoint {
            ranks: r,
            time_s: t,
            speedup: t0 / t,
            efficiency: t0 / t,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineId;

    fn triad(n: usize) -> ExecSignature {
        let mut s = ExecSignature::streaming("Stream_TRIAD", n);
        s.flops = 2.0 * n as f64;
        s.bytes_read = 16.0 * n as f64;
        s.bytes_written = 8.0 * n as f64;
        s
    }

    #[test]
    fn strong_scaling_of_a_bandwidth_kernel_is_near_linear() {
        let m = Machine::get(MachineId::SprDdr);
        let pts = strong_scaling(&m, &triad(32_000_000), &[14, 28, 56, 112]);
        assert_eq!(pts[0].speedup, 1.0);
        // Bandwidth scales with sockets/ranks in this sweep: near-ideal.
        let last = pts.last().unwrap();
        assert!(last.efficiency > 0.9, "{last:?}");
        assert!(last.speedup > 7.0, "{last:?}");
    }

    #[test]
    fn strong_scaling_saturates_for_launch_bound_kernels() {
        // A kernel dominated by fixed launch overhead cannot strong-scale.
        let m = Machine::get(MachineId::P9V100);
        let mut s = triad(100_000);
        s.kernel_launches = 52.0;
        let pts = strong_scaling(&m, &s, &[1, 2, 4, 8]);
        let last = pts.last().unwrap();
        assert!(
            last.efficiency < 0.5,
            "launch overhead must break scaling: {last:?}"
        );
    }

    #[test]
    fn weak_scaling_of_a_streaming_kernel_is_flat() {
        let m = Machine::get(MachineId::SprDdr);
        let per_rank = triad(285_714); // 32M / 112
        let pts = weak_scaling(&m, &per_rank, &[14, 28, 56, 112]);
        for p in &pts {
            assert!(
                (p.efficiency - 1.0).abs() < 0.05,
                "weak scaling should be flat for O(N): {p:?}"
            );
        }
    }

    #[test]
    fn strong_scaling_of_superlinear_work_is_superlinear() {
        // O(N^{3/2}) at fixed total size: quartering the per-rank data
        // cuts per-rank work by 8x, so speedup exceeds the rank ratio —
        // the flip side of the paper's decomposition caveat (machines
        // with fewer ranks do more total work).
        let m = Machine::get(MachineId::SprDdr);
        let mut sig = ExecSignature::streaming("mm", 1_000_000);
        sig.complexity = crate::signature::Complexity::NSqrtN;
        sig.flops = 2.0 * (1_000_000f64).powf(1.5);
        sig.cache_reuse = 0.9;
        sig.flop_efficiency = 1.0;
        let pts = strong_scaling(&m, &sig, &[14, 56]);
        let last = pts.last().unwrap();
        assert!(
            last.speedup > 4.0 * 1.5,
            "superlinear strong scaling expected: {last:?}"
        );
    }

    #[test]
    fn weak_scaling_is_flat_even_for_superlinear_work() {
        // Weak scaling keeps the per-rank size constant, so each rank's
        // O(N^{3/2}) work is also constant — communication (not modeled
        // for this bare signature) is what degrades real weak scaling.
        let m = Machine::get(MachineId::SprDdr);
        let mut per_rank = ExecSignature::streaming("mm", 100_000);
        per_rank.complexity = crate::signature::Complexity::NSqrtN;
        per_rank.flops = 2.0 * (100_000f64).powf(1.5);
        per_rank.cache_reuse = 0.9;
        per_rank.flop_efficiency = 1.0;
        let pts = weak_scaling(&m, &per_rank, &[1, 4, 16]);
        for p in &pts {
            assert!((p.efficiency - 1.0).abs() < 0.05, "{p:?}");
        }
    }

    #[test]
    fn scaled_machine_preserves_per_rank_shares() {
        let base = Machine::get(MachineId::SprDdr);
        let half = scaled_machine(&base, 56);
        assert!((half.bw_per_rank() - base.bw_per_rank()).abs() < 1.0);
        assert_eq!(half.ranks, 56);
    }
}
