//! Descriptors of the four evaluation systems (paper Tables II and III).

use serde::{Deserialize, Serialize};

/// CPU vs GPU execution (determines which hardware-metric model applies:
/// TMA on CPUs, instruction roofline on GPUs — paper §III-A/B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MachineKind {
    /// CPU-only node; kernels run with the `RAJA_Seq` variant across MPI
    /// ranks.
    Cpu,
    /// CPU+GPU node; kernels run with the device variant, one rank per GPU.
    Gpu,
}

/// The four systems of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MachineId {
    /// Poodle with DDR memory (Intel Sapphire Rapids) — the baseline.
    SprDdr,
    /// Poodle with high-bandwidth memory (Intel Sapphire Rapids + HBM).
    SprHbm,
    /// Sierra (IBM Power9 + 4× NVIDIA V100).
    P9V100,
    /// Tioga (AMD EPYC + 4× MI250X = 8 GCDs).
    EpycMi250x,
}

impl MachineId {
    /// All machines, baseline first.
    pub fn all() -> [MachineId; 4] {
        [
            MachineId::SprDdr,
            MachineId::SprHbm,
            MachineId::P9V100,
            MachineId::EpycMi250x,
        ]
    }

    /// The paper's shorthand.
    pub fn shorthand(&self) -> &'static str {
        match self {
            MachineId::SprDdr => "SPR-DDR",
            MachineId::SprHbm => "SPR-HBM",
            MachineId::P9V100 => "P9-V100",
            MachineId::EpycMi250x => "EPYC-MI250X",
        }
    }
}

/// A machine model: Table II hardware parameters plus the microarchitectural
/// constants the TMA/roofline/time models need.
///
/// "Achieved" figures are the measured ceilings the paper reports
/// (Basic_MAT_MAT_SHARED for FLOPS, Stream_TRIAD for bandwidth); we adopt
/// them as sustained-rate ceilings since this container cannot measure the
/// real hardware.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Machine {
    /// Identity.
    pub id: MachineId,
    /// System name (Table II).
    pub system: &'static str,
    /// Architecture executing the kernels.
    pub architecture: &'static str,
    /// CPU or GPU metric model.
    pub kind: MachineKind,
    /// Compute units per node as listed in Table II (sockets or GPUs/GCDs).
    pub units_per_node: usize,
    /// MPI ranks used per node (Table III).
    pub ranks: usize,
    /// RAJAPerf variant name used on this machine (Table III).
    pub variant: &'static str,
    /// GPU block-size tuning (Table III; None on CPUs).
    pub gpu_block_size: Option<usize>,
    /// Peak node FLOPS (double precision), FLOP/s.
    pub peak_flops_node: f64,
    /// Peak node memory bandwidth, B/s.
    pub peak_bw_node: f64,
    /// Sustained FLOPS ceiling, FLOP/s (Table II "Basic_MAT_MAT").
    pub achieved_flops_node: f64,
    /// Sustained bandwidth ceiling, B/s (Table II "Stream_TRIAD").
    pub achieved_bw_node: f64,
    /// Sustained pure-read bandwidth, B/s. The memory system is modeled as
    /// a shared bus: `t_mem = reads/read_bw + writes/write_bw`, calibrated
    /// so Stream_TRIAD's 2:1 read:write mix reproduces the Table II
    /// achieved figure.
    pub achieved_read_bw_node: f64,
    /// Sustained pure-write bandwidth, B/s. Sapphire Rapids HBM sustains
    /// far less write than read bandwidth (visible in its 33.7% TRIAD
    /// efficiency), which is why write-dominated kernels (MEMSET,
    /// INIT_VIEW1D, NESTED_INIT) gain on the V100 but not proportionally on
    /// SPR-HBM (§V-B). GPUs stream writes symmetrically.
    pub achieved_write_bw_node: f64,
    /// Core/SM clock, Hz.
    pub freq_hz: f64,
    /// Hardware cores (CPU) or SMs/CUs (GPU) per node.
    pub cores_per_node: usize,
    /// Pipeline issue width (TMA slots per cycle per core).
    pub issue_width: f64,
    /// Per-kernel-launch overhead, seconds (0 on CPUs).
    pub launch_overhead_s: f64,
    /// Network latency per message, seconds.
    pub net_latency_s: f64,
    /// Network bandwidth per rank, B/s.
    pub net_bw: f64,
    /// Atomic RMW throughput, ops/s per node (serialization-limited).
    pub atomic_rate: f64,
}

impl Machine {
    /// Look up a machine descriptor.
    pub fn get(id: MachineId) -> Machine {
        const TB: f64 = 1e12;
        match id {
            // Table II row 1: 4.7 TFLOPS peak, 0.8 achieved (18.0%);
            // 0.6 TB/s peak, 0.5 achieved (77.7%). 2×56-core SPR, 112 ranks.
            MachineId::SprDdr => Machine {
                id,
                system: "Poodle (DDR)",
                architecture: "Intel Sapphire Rapids",
                kind: MachineKind::Cpu,
                units_per_node: 2,
                ranks: 112,
                variant: "RAJA_Seq",
                gpu_block_size: None,
                peak_flops_node: 4.7 * TB,
                peak_bw_node: 0.6 * TB,
                achieved_flops_node: 0.8 * TB,
                achieved_bw_node: 0.5 * TB,
                achieved_read_bw_node: 0.6 * TB,
                achieved_write_bw_node: 0.375 * TB,
                freq_hz: 2.0e9,
                cores_per_node: 112,
                issue_width: 4.0,
                launch_overhead_s: 0.0,
                net_latency_s: 1.5e-6,
                net_bw: 12.5e9,
                atomic_rate: 1.0e10,
            },
            // Table II row 2: same compute, HBM: 3.3 TB/s peak, 33.7%
            // achieved → 1.11 TB/s sustained.
            MachineId::SprHbm => Machine {
                id,
                system: "Poodle (HBM)",
                architecture: "Intel Sapphire Rapids",
                kind: MachineKind::Cpu,
                units_per_node: 2,
                ranks: 112,
                variant: "RAJA_Seq",
                gpu_block_size: None,
                peak_flops_node: 4.7 * TB,
                peak_bw_node: 3.3 * TB,
                achieved_flops_node: 0.7 * TB,
                achieved_bw_node: 3.3 * 0.337 * TB,
                achieved_read_bw_node: 1.7 * TB,
                achieved_write_bw_node: 0.55 * TB,
                freq_hz: 2.0e9,
                cores_per_node: 112,
                issue_width: 4.0,
                launch_overhead_s: 0.0,
                net_latency_s: 1.5e-6,
                net_bw: 12.5e9,
                atomic_rate: 1.0e10,
            },
            // Table II row 3: 4 V100s: 31.2 TFLOPS peak, 7.0 achieved
            // (22.4%); 3.6 TB/s peak, 3.3 achieved (92.6%).
            MachineId::P9V100 => Machine {
                id,
                system: "Sierra",
                architecture: "NVIDIA V100",
                kind: MachineKind::Gpu,
                units_per_node: 4,
                ranks: 4,
                variant: "RAJA_CUDA",
                gpu_block_size: Some(256),
                peak_flops_node: 31.2 * TB,
                peak_bw_node: 3.6 * TB,
                achieved_flops_node: 7.0 * TB,
                achieved_bw_node: 3.3 * TB,
                achieved_read_bw_node: 3.3 * TB,
                achieved_write_bw_node: 3.3 * TB,
                freq_hz: 1.53e9,
                cores_per_node: 4 * 80, // SMs
                issue_width: 4.0,       // warp schedulers per SM
                launch_overhead_s: 5.0e-6,
                net_latency_s: 1.5e-6,
                net_bw: 12.5e9,
                atomic_rate: 2.0e9,
            },
            // Table II row 4: 8 GCDs: 191.5 TFLOPS peak, 13.3 achieved
            // (7.0%); 12.8 TB/s peak, 10.2 achieved (79.5%).
            MachineId::EpycMi250x => Machine {
                id,
                system: "Tioga",
                architecture: "AMD MI250X",
                kind: MachineKind::Gpu,
                units_per_node: 8,
                ranks: 8,
                variant: "RAJA_HIP",
                gpu_block_size: Some(256),
                peak_flops_node: 191.5 * TB,
                peak_bw_node: 12.8 * TB,
                achieved_flops_node: 13.3 * TB,
                achieved_bw_node: 10.2 * TB,
                achieved_read_bw_node: 10.2 * TB,
                achieved_write_bw_node: 10.2 * TB,
                freq_hz: 1.7e9,
                cores_per_node: 8 * 110, // CUs
                issue_width: 4.0,
                launch_overhead_s: 6.0e-6,
                net_latency_s: 1.5e-6,
                net_bw: 12.5e9,
                atomic_rate: 2.4e9,
            },
        }
    }

    /// Fraction of the theoretical FLOPS the FLOPS-ceiling kernel achieves
    /// (Table II "% exp" for Basic_MAT_MAT).
    pub fn flops_pct_of_peak(&self) -> f64 {
        100.0 * self.achieved_flops_node / self.peak_flops_node
    }

    /// Fraction of the theoretical bandwidth Stream_TRIAD achieves
    /// (Table II "% exp").
    pub fn bw_pct_of_peak(&self) -> f64 {
        100.0 * self.achieved_bw_node / self.peak_bw_node
    }

    /// Per-rank share of the sustained bandwidth.
    pub fn bw_per_rank(&self) -> f64 {
        self.achieved_bw_node / self.ranks as f64
    }

    /// Per-rank share of the sustained read bandwidth.
    pub fn read_bw_per_rank(&self) -> f64 {
        self.achieved_read_bw_node / self.ranks as f64
    }

    /// Per-rank share of the sustained write bandwidth.
    pub fn write_bw_per_rank(&self) -> f64 {
        self.achieved_write_bw_node / self.ranks as f64
    }

    /// Per-rank share of the sustained FLOPS ceiling.
    pub fn flops_per_rank(&self) -> f64 {
        self.achieved_flops_node / self.ranks as f64
    }

    /// Aggregate micro-op issue throughput per rank (slots/s).
    pub fn uop_rate_per_rank(&self) -> f64 {
        let cores_per_rank = self.cores_per_node as f64 / self.ranks as f64;
        // GPUs issue one warp instruction covering 32 lanes per slot, so the
        // per-thread uop throughput is 32× the scheduler slot rate.
        let lane_factor = match self.kind {
            MachineKind::Cpu => 1.0,
            MachineKind::Gpu => 32.0,
        };
        cores_per_rank * self.issue_width * self.freq_hz * lane_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_percentages_match_paper() {
        let m = Machine::get(MachineId::SprDdr);
        assert!((m.flops_pct_of_peak() - 18.0).abs() < 1.0, "{}", m.flops_pct_of_peak());
        assert!((m.bw_pct_of_peak() - 77.7).abs() < 6.0, "{}", m.bw_pct_of_peak());
        let m = Machine::get(MachineId::SprHbm);
        assert!((m.flops_pct_of_peak() - 15.5).abs() < 1.0);
        assert!((m.bw_pct_of_peak() - 33.7).abs() < 1.0);
        let m = Machine::get(MachineId::P9V100);
        assert!((m.flops_pct_of_peak() - 22.4).abs() < 1.0);
        assert!((m.bw_pct_of_peak() - 92.6).abs() < 1.0);
        let m = Machine::get(MachineId::EpycMi250x);
        assert!((m.flops_pct_of_peak() - 7.0).abs() < 0.5);
        assert!((m.bw_pct_of_peak() - 79.5).abs() < 1.0);
    }

    #[test]
    fn table3_run_parameters() {
        assert_eq!(Machine::get(MachineId::SprDdr).ranks, 112);
        assert_eq!(Machine::get(MachineId::SprDdr).variant, "RAJA_Seq");
        assert_eq!(Machine::get(MachineId::P9V100).ranks, 4);
        assert_eq!(Machine::get(MachineId::P9V100).variant, "RAJA_CUDA");
        assert_eq!(Machine::get(MachineId::EpycMi250x).ranks, 8);
        assert_eq!(Machine::get(MachineId::EpycMi250x).variant, "RAJA_HIP");
    }

    #[test]
    fn hbm_has_more_bandwidth_same_compute() {
        let ddr = Machine::get(MachineId::SprDdr);
        let hbm = Machine::get(MachineId::SprHbm);
        assert!(hbm.achieved_bw_node > 2.0 * ddr.achieved_bw_node);
        assert_eq!(ddr.peak_flops_node, hbm.peak_flops_node);
    }

    #[test]
    fn gpus_have_launch_overhead_cpus_do_not() {
        for id in MachineId::all() {
            let m = Machine::get(id);
            match m.kind {
                MachineKind::Cpu => assert_eq!(m.launch_overhead_s, 0.0),
                MachineKind::Gpu => assert!(m.launch_overhead_s > 0.0),
            }
        }
    }

    #[test]
    fn shorthand_names() {
        assert_eq!(MachineId::SprDdr.shorthand(), "SPR-DDR");
        assert_eq!(MachineId::EpycMi250x.shorthand(), "EPYC-MI250X");
    }

    #[test]
    fn per_rank_shares_partition_the_node() {
        let m = Machine::get(MachineId::P9V100);
        assert!((m.bw_per_rank() * m.ranks as f64 - m.achieved_bw_node).abs() < 1.0);
    }
}
