//! Instruction roofline model for GPUs (Ding & Williams; paper §III-B).
//!
//! The paper collects Nsight Compute counters (Table IV) on the V100 and
//! plots, per cache level, each kernel's *instruction intensity* (warp
//! instructions per transaction) against its *performance* (warp GIPS),
//! under ceilings given by the theoretical instruction rate (horizontal
//! roof) and per-level transaction bandwidth (diagonal roof). This module
//! computes the same quantities analytically:
//!
//! * warp instructions = thread μops / 32 (the Table IV thread→warp
//!   convention);
//! * transactions = traffic at the level divided by the 32-byte sector
//!   size, with per-level traffic derived from the kernel's cache-reuse
//!   descriptor (L1 sees all access traffic; L2 sees L1 misses; HBM sees
//!   the DRAM traffic);
//! * time from the [`crate::predict`] model, giving GIPS.

use crate::machine::{Machine, MachineKind};
use crate::predict::predict_time;
use crate::signature::ExecSignature;
use serde::{Deserialize, Serialize};

/// Memory-transaction granularity (an NVIDIA sector), bytes.
pub const SECTOR_BYTES: f64 = 32.0;

/// The three cache layers of Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheLevel {
    /// L1/texture cache.
    L1,
    /// Device-wide L2.
    L2,
    /// HBM device memory.
    Hbm,
}

impl CacheLevel {
    /// All levels, innermost first.
    pub fn all() -> [CacheLevel; 3] {
        [CacheLevel::L1, CacheLevel::L2, CacheLevel::Hbm]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            CacheLevel::L1 => "L1",
            CacheLevel::L2 => "L2",
            CacheLevel::Hbm => "HBM",
        }
    }
}

/// Per-level ceilings of the instruction roofline for a GPU machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RooflineCeilings {
    /// Theoretical peak warp instructions per second (the horizontal roof),
    /// in GIPS.
    pub peak_warp_gips: f64,
    /// L1 transaction bandwidth, GTXN/s (diagonal roof).
    pub l1_gtxn_s: f64,
    /// L2 transaction bandwidth, GTXN/s.
    pub l2_gtxn_s: f64,
    /// HBM transaction bandwidth, GTXN/s.
    pub hbm_gtxn_s: f64,
}

/// Ceilings for the GPU machines. V100 constants follow Ding & Williams
/// (80 SMs × 4 schedulers × 1.53 GHz ≈ 489.6 warp GIPS; L1 12,828 GB/s,
/// L2 2,996 GB/s, HBM 828 GB/s ÷ 32 B sectors), scaled by units per node.
/// MI250X ceilings are derived the same way from its CU count and
/// bandwidths.
pub fn ceilings(machine: &Machine) -> RooflineCeilings {
    assert!(
        machine.kind == MachineKind::Gpu,
        "instruction roofline applies to GPU machines"
    );
    let units = machine.units_per_node as f64;
    match machine.id {
        crate::machine::MachineId::P9V100 => RooflineCeilings {
            peak_warp_gips: 489.6 * units,
            l1_gtxn_s: 12828.0 / 32.0 * units,
            l2_gtxn_s: 2996.0 / 32.0 * units,
            hbm_gtxn_s: 828.0 / 32.0 * units,
        },
        _ => RooflineCeilings {
            // MI250X per GCD: 110 CUs × 4 SIMDs × 1.7 GHz; LDS/L2/HBM
            // bandwidths from vendor documentation.
            peak_warp_gips: 110.0 * 4.0 * 1.7 * units,
            l1_gtxn_s: 13000.0 / 32.0 * units,
            l2_gtxn_s: 3500.0 / 32.0 * units,
            hbm_gtxn_s: 1638.0 / 32.0 * units,
        },
    }
}

/// A kernel's point on the instruction roofline at one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Cache level.
    pub level: CacheLevel,
    /// Warp instructions per transaction at this level.
    pub intensity: f64,
    /// Achieved warp GIPS.
    pub warp_gips: f64,
    /// Transactions per second at this level, in GTXN/s.
    pub gtxn_s: f64,
}

/// Per-level memory traffic implied by the signature's reuse descriptor:
/// the L1 sees every access; hits within the reused fraction are absorbed
/// 60% at L1 and 40% at L2 (a typical split for blocked kernels); the DRAM
/// traffic is the unreused remainder.
fn traffic_bytes(sig: &ExecSignature, level: CacheLevel) -> f64 {
    let total = sig.bytes_total();
    match level {
        CacheLevel::L1 => total,
        CacheLevel::L2 => total * (1.0 - 0.6 * sig.cache_reuse),
        CacheLevel::Hbm => sig.dram_bytes(),
    }
}

/// Compute the kernel's roofline point at `level` on a GPU machine
/// (node-aggregate: all ranks' traffic and instructions over the predicted
/// wall time).
pub fn roofline_point(machine: &Machine, sig: &ExecSignature, level: CacheLevel) -> RooflinePoint {
    assert!(
        machine.kind == MachineKind::Gpu,
        "instruction roofline applies to GPU machines"
    );
    let t = predict_time(machine, sig);
    let n_rank = (sig.problem_size / machine.ranks).max(1);
    let s = sig.scaled_to(n_rank);
    let ranks = machine.ranks as f64;
    let warp_instr = s.uops() * ranks / 32.0;
    let txn = (traffic_bytes(&s, level) * ranks / SECTOR_BYTES).max(1.0);
    let secs = t.total_s.max(1e-12);
    RooflinePoint {
        level,
        intensity: warp_instr / txn,
        warp_gips: warp_instr / secs / 1e9,
        gtxn_s: txn / secs / 1e9,
    }
}

/// Whether a point sits under the diagonal (bandwidth) roof rather than the
/// horizontal (instruction) roof — i.e. the kernel is memory-bound at this
/// level.
pub fn is_bandwidth_limited(c: &RooflineCeilings, p: &RooflinePoint) -> bool {
    let bw_roof = match p.level {
        CacheLevel::L1 => c.l1_gtxn_s,
        CacheLevel::L2 => c.l2_gtxn_s,
        CacheLevel::Hbm => c.hbm_gtxn_s,
    };
    // At this intensity, the bandwidth roof caps GIPS at intensity × roof.
    p.intensity * bw_roof < c.peak_warp_gips
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, MachineId};

    const N: usize = 32_000_000;

    fn triad() -> ExecSignature {
        let mut s = ExecSignature::streaming("Stream_TRIAD", N);
        s.flops = 2.0 * N as f64;
        s.bytes_read = 16.0 * N as f64;
        s.bytes_written = 8.0 * N as f64;
        s
    }

    fn matmul() -> ExecSignature {
        let mut s = ExecSignature::streaming("Basic_MAT_MAT_SHARED", N);
        s.complexity = crate::signature::Complexity::NSqrtN;
        s.flops = 2.0 * (N as f64).powf(1.5);
        s.bytes_read = 16.0 * N as f64;
        s.bytes_written = 8.0 * N as f64;
        s.cache_reuse = 0.95;
        s.flop_efficiency = 1.0;
        s
    }

    #[test]
    fn v100_ceilings_match_ding_williams_per_gpu() {
        let m = Machine::get(MachineId::P9V100);
        let c = ceilings(&m);
        assert!((c.peak_warp_gips / 4.0 - 489.6).abs() < 0.1);
        assert!((c.hbm_gtxn_s / 4.0 - 25.875).abs() < 0.01);
    }

    #[test]
    fn points_under_the_roofs() {
        let m = Machine::get(MachineId::P9V100);
        let c = ceilings(&m);
        for sig in [triad(), matmul()] {
            for level in CacheLevel::all() {
                let p = roofline_point(&m, &sig, level);
                assert!(p.warp_gips <= c.peak_warp_gips * 1.05, "{sig:?} {level:?} {p:?}");
                let bw_roof = match level {
                    CacheLevel::L1 => c.l1_gtxn_s,
                    CacheLevel::L2 => c.l2_gtxn_s,
                    CacheLevel::Hbm => c.hbm_gtxn_s,
                };
                assert!(p.gtxn_s <= bw_roof * 1.05, "{sig:?} {level:?} {p:?}");
            }
        }
    }

    #[test]
    fn streaming_kernel_saturates_hbm_transactions() {
        let m = Machine::get(MachineId::P9V100);
        let c = ceilings(&m);
        let p = roofline_point(&m, &triad(), CacheLevel::Hbm);
        // TRIAD achieves 92.6% of peak bandwidth on this machine.
        assert!(p.gtxn_s > 0.8 * c.hbm_gtxn_s, "{p:?} vs {c:?}");
        assert!(is_bandwidth_limited(&c, &p), "{p:?}");
    }

    #[test]
    fn intensity_rises_through_the_hierarchy_for_reused_kernels() {
        // With reuse, HBM sees less traffic than L1 → fewer transactions →
        // higher intensity.
        let m = Machine::get(MachineId::P9V100);
        let l1 = roofline_point(&m, &matmul(), CacheLevel::L1);
        let hbm = roofline_point(&m, &matmul(), CacheLevel::Hbm);
        assert!(hbm.intensity > 2.0 * l1.intensity, "{l1:?} vs {hbm:?}");
    }

    #[test]
    fn compute_bound_kernel_is_not_bandwidth_limited_at_hbm() {
        let m = Machine::get(MachineId::P9V100);
        let c = ceilings(&m);
        let p = roofline_point(&m, &matmul(), CacheLevel::Hbm);
        assert!(!is_bandwidth_limited(&c, &p), "{p:?}");
    }

    #[test]
    #[should_panic(expected = "applies to GPU machines")]
    fn roofline_on_cpu_panics() {
        let m = Machine::get(MachineId::SprDdr);
        let _ = roofline_point(&m, &triad(), CacheLevel::L1);
    }
}
