//! Clustering-quality diagnostics: cophenetic correlation and silhouette
//! scores.
//!
//! The paper picks the Ward threshold (1.4 → 4 clusters) by inspection;
//! these diagnostics let the reproduction *quantify* that choice — the
//! ablation binary sweeps cluster counts and reports silhouettes, and the
//! cophenetic correlation validates that the linkage preserves the
//! original distances.

use crate::{euclidean, LinkageResult};

impl LinkageResult {
    /// Cophenetic distance between observations `a` and `b`: the merge
    /// height at which they first share a cluster.
    pub fn cophenetic_distance(&self, a: usize, b: usize) -> f64 {
        assert!(a < self.n && b < self.n, "observation indices in range");
        if a == b {
            return 0.0;
        }
        // Track each observation's current cluster id while replaying the
        // merges; the first merge joining both ids is the answer.
        let mut cluster_a = a;
        let mut cluster_b = b;
        for (step, m) in self.merges.iter().enumerate() {
            let new_id = self.n + step;
            if m.a == cluster_a || m.b == cluster_a {
                cluster_a = new_id;
            }
            if m.a == cluster_b || m.b == cluster_b {
                cluster_b = new_id;
            }
            if cluster_a == cluster_b {
                return m.distance;
            }
        }
        f64::INFINITY
    }

    /// Pearson correlation between the original pairwise distances and the
    /// cophenetic distances (scipy's `cophenet`). Values near 1 indicate
    /// the dendrogram faithfully represents the data.
    pub fn cophenetic_correlation(&self, points: &[Vec<f64>]) -> f64 {
        assert_eq!(points.len(), self.n, "one point per observation");
        if self.n < 3 {
            return 1.0;
        }
        let mut orig = Vec::new();
        let mut coph = Vec::new();
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                orig.push(euclidean(&points[i], &points[j]));
                coph.push(self.cophenetic_distance(i, j));
            }
        }
        pearson(&orig, &coph)
    }
}

fn pearson(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
        vy += (b - my) * (b - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx * vy).sqrt()
}

/// Mean silhouette coefficient of a flat clustering over `points`
/// (labels as produced by [`LinkageResult::fcluster`]). Ranges in
/// [-1, 1]; higher means tighter, better-separated clusters. Singleton
/// clusters contribute 0, per the standard definition.
pub fn silhouette_score(points: &[Vec<f64>], labels: &[usize]) -> f64 {
    assert_eq!(points.len(), labels.len());
    let n = points.len();
    if n < 2 {
        return 0.0;
    }
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut total = 0.0;
    for i in 0..n {
        // Mean distance to every cluster.
        let mut sums = vec![0.0f64; k];
        let mut counts = vec![0usize; k];
        for j in 0..n {
            if i != j {
                sums[labels[j]] += euclidean(&points[i], &points[j]);
                counts[labels[j]] += 1;
            }
        }
        let own = labels[i];
        if counts[own] == 0 {
            continue; // singleton: s = 0
        }
        let a = sums[own] / counts[own] as f64;
        let b = (0..k)
            .filter(|&c| c != own && counts[c] > 0)
            .map(|c| sums[c] / counts[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if b.is_finite() {
            total += (b - a) / a.max(b);
        }
    }
    total / n as f64
}

/// Cap on observations entering a silhouette evaluation inside
/// [`select_clusters`]; above it a deterministic stride sample keeps the
/// O(n²) silhouette affordable at corpus scale.
pub const SILHOUETTE_SAMPLE_CAP: usize = 2048;

/// Outcome of silhouette-guided cluster-count selection.
#[derive(Debug, Clone)]
pub struct KSelection {
    /// Chosen number of flat clusters.
    pub k: usize,
    /// Cut height that produces `k` clusters (feed to `fcluster`).
    pub threshold: f64,
    /// Flat labels at the chosen cut, one per observation.
    pub labels: Vec<usize>,
    /// `(k, silhouette)` for every candidate count actually evaluated,
    /// ascending in `k`.
    pub scores: Vec<(usize, f64)>,
}

/// Pick the cluster count in `kmin..=kmax` with the best (sampled)
/// silhouette, breaking ties toward fewer clusters. Candidate counts the
/// dendrogram cannot realise exactly are evaluated at the count their cut
/// does realise, once. Mirrors how the paper's threshold 1.4 was validated
/// by inspection, but quantified.
///
/// # Panics
/// Panics if `points` and `link` disagree on the number of observations or
/// the range is empty or starts below 2.
pub fn select_clusters(
    points: &[Vec<f64>],
    link: &crate::LinkageResult,
    kmin: usize,
    kmax: usize,
) -> KSelection {
    assert_eq!(points.len(), link.n, "one point per observation");
    assert!(kmin >= 2 && kmin <= kmax, "need a k range starting at >= 2");
    let mut best: Option<(f64, usize, f64, Vec<usize>)> = None;
    let mut scores = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for k in kmin..=kmax.min(link.n) {
        let threshold = link.threshold_for_clusters(k);
        let labels = link.fcluster(threshold);
        let actual = labels.iter().copied().max().map_or(0, |m| m + 1);
        if actual < 2 || !seen.insert(actual) {
            continue;
        }
        let s = sampled_silhouette(points, &labels, SILHOUETTE_SAMPLE_CAP);
        scores.push((actual, s));
        let better = match &best {
            None => true,
            Some((bs, bk, _, _)) => s > *bs || (s == *bs && actual < *bk),
        };
        if better {
            best = Some((s, actual, threshold, labels));
        }
    }
    scores.sort_by_key(|&(k, _)| k);
    let (_, k, threshold, labels) = best.unwrap_or_else(|| {
        // Degenerate dendrogram (e.g. all points identical): every cut is
        // one cluster. Report that honestly.
        (0.0, 1, f64::INFINITY, vec![0; link.n])
    });
    KSelection {
        k,
        threshold,
        labels,
        scores,
    }
}

/// Silhouette over a deterministic stride sample of at most `cap`
/// observations: index 0, then every ⌈n/cap⌉-th point. Exact (delegates to
/// [`silhouette_score`]) when `n <= cap`. Stride sampling keeps the result
/// reproducible across runs and thread counts.
pub fn sampled_silhouette(points: &[Vec<f64>], labels: &[usize], cap: usize) -> f64 {
    assert_eq!(points.len(), labels.len());
    assert!(cap >= 2, "a silhouette needs at least two observations");
    let n = points.len();
    if n <= cap {
        return silhouette_score(points, labels);
    }
    let stride = n.div_ceil(cap);
    let idx: Vec<usize> = (0..n).step_by(stride).collect();
    let pts: Vec<Vec<f64>> = idx.iter().map(|&i| points[i].clone()).collect();
    let labs: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();
    silhouette_score(&pts, &labs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{linkage, Linkage};

    fn blobs() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.0],
            vec![0.2, 0.1],
            vec![0.1, 0.2],
            vec![5.0, 5.0],
            vec![5.2, 5.1],
            vec![5.1, 5.2],
        ]
    }

    #[test]
    fn cophenetic_distance_is_merge_height() {
        let pts = vec![vec![0.0], vec![1.0], vec![10.0]];
        let l = linkage(&pts, Linkage::Single);
        assert_eq!(l.cophenetic_distance(0, 1), 1.0);
        assert_eq!(l.cophenetic_distance(0, 2), 9.0);
        assert_eq!(l.cophenetic_distance(1, 2), 9.0, "joined at the top merge");
        assert_eq!(l.cophenetic_distance(2, 2), 0.0);
    }

    #[test]
    fn cophenetic_correlation_high_for_well_separated_data() {
        let pts = blobs();
        let l = linkage(&pts, Linkage::Ward);
        let c = l.cophenetic_correlation(&pts);
        assert!(c > 0.9, "cophenetic correlation {c}");
    }

    #[test]
    fn silhouette_high_for_true_clusters_low_for_random_labels() {
        let pts = blobs();
        let good = vec![0, 0, 0, 1, 1, 1];
        let bad = vec![0, 1, 0, 1, 0, 1];
        let sg = silhouette_score(&pts, &good);
        let sb = silhouette_score(&pts, &bad);
        assert!(sg > 0.8, "good labels {sg}");
        assert!(sb < 0.2, "bad labels {sb}");
        assert!(sg > sb);
    }

    #[test]
    fn silhouette_handles_singletons_and_one_cluster() {
        let pts = blobs();
        let one = vec![0; 6];
        assert_eq!(silhouette_score(&pts, &one), 0.0, "no second cluster");
        let with_singleton = vec![0, 0, 0, 1, 1, 2];
        let s = silhouette_score(&pts, &with_singleton);
        assert!(s.is_finite());
    }

    #[test]
    fn select_clusters_finds_the_true_blob_count() {
        // Two obvious blobs: silhouette must peak at k = 2 across 2..=5.
        let pts = blobs();
        let l = linkage(&pts, Linkage::Ward);
        let sel = select_clusters(&pts, &l, 2, 5);
        assert_eq!(sel.k, 2, "scores: {:?}", sel.scores);
        assert_eq!(l.fcluster(sel.threshold), sel.labels);
        assert!(sel.scores.iter().any(|&(k, _)| k == 2));
        assert!(sel.scores.windows(2).all(|w| w[0].0 < w[1].0), "ascending k");
    }

    #[test]
    fn select_clusters_on_identical_points_degrades_gracefully() {
        let pts = vec![vec![1.0, 1.0]; 4];
        let l = linkage(&pts, Linkage::Ward);
        let sel = select_clusters(&pts, &l, 2, 4);
        // All merges at height 0: any cut is either n singletons or one
        // cluster, so candidates collapse. Just require consistency.
        assert_eq!(sel.labels.len(), 4);
        assert!(sel.k >= 1);
    }

    #[test]
    fn sampled_silhouette_matches_exact_below_cap_and_approximates_above() {
        let pts = blobs();
        let labels = vec![0, 0, 0, 1, 1, 1];
        let exact = silhouette_score(&pts, &labels);
        assert_eq!(sampled_silhouette(&pts, &labels, 2048), exact);
        // Blow the corpus up past the cap; the strided estimate must stay
        // close to the exact score for such clean clusters.
        let mut big = Vec::new();
        let mut big_labels = Vec::new();
        for rep in 0..200 {
            for (p, &l) in pts.iter().zip(&labels) {
                let mut q = p.clone();
                q[0] += (rep % 7) as f64 * 1e-3;
                big.push(q);
                big_labels.push(l);
            }
        }
        let approx = sampled_silhouette(&big, &big_labels, 64);
        assert!((approx - exact).abs() < 0.05, "approx {approx} exact {exact}");
    }

    #[test]
    fn symmetric_cophenetic() {
        let pts = blobs();
        let l = linkage(&pts, Linkage::Average);
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                assert_eq!(
                    l.cophenetic_distance(i, j),
                    l.cophenetic_distance(j, i)
                );
            }
        }
    }
}
