//! Agglomerative hierarchical clustering with Ward linkage.
//!
//! The paper clusters RAJAPerf kernels by their five-component top-down
//! (TMA) metric tuples using "agglomerative, bottom-up, hierarchical
//! clustering ... Euclidean distance ... the Ward merge strategy (Ward 1963) ...
//! distance threshold 1.4, identifying four distinct clusters" (§IV). Its
//! analysis pipeline calls scipy; this crate reimplements that algorithm —
//! the Lance–Williams recurrence over a distance matrix — with
//! scipy-compatible conventions:
//!
//! * observations are points in R^d, initial inter-cluster distances are
//!   Euclidean;
//! * the linkage matrix rows are `(cluster_a, cluster_b, distance, size)`
//!   with new clusters numbered `n, n+1, ...` in merge order, `a`/`b`
//!   sorted ascending;
//! * [`LinkageResult::fcluster`] cuts the tree at a distance threshold
//!   (scipy's `criterion='distance'`), relabelling clusters `0..k` in order
//!   of first appearance;
//! * [`LinkageResult::dendrogram_text`] renders the merge tree for Fig. 6.
//!
//! Complexity is the textbook O(n³)/O(n²) — ample for a 60–80 kernel suite.

pub mod quality;

pub use quality::silhouette_score;

/// Linkage update strategies (a subset of scipy's).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Ward's minimum-variance criterion (the paper's choice).
    Ward,
    /// Nearest-neighbour (minimum) linkage.
    Single,
    /// Furthest-neighbour (maximum) linkage.
    Complete,
    /// Unweighted average (UPGMA) linkage.
    Average,
}

/// One merge step of the agglomeration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// First merged cluster id (smaller id).
    pub a: usize,
    /// Second merged cluster id.
    pub b: usize,
    /// Inter-cluster distance at which the merge happened.
    pub distance: f64,
    /// Number of original observations in the new cluster.
    pub size: usize,
}

/// The result of [`linkage`]: `n - 1` merges over `n` observations.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkageResult {
    /// Number of original observations.
    pub n: usize,
    /// Merge steps in the order performed. Step `i` creates cluster `n + i`.
    pub merges: Vec<Merge>,
}

/// Euclidean distance between two equal-length points.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Compute the hierarchical clustering of `points` under `method`.
///
/// # Panics
/// Panics on an empty input or ragged point dimensions.
pub fn linkage(points: &[Vec<f64>], method: Linkage) -> LinkageResult {
    let n = points.len();
    assert!(n > 0, "linkage needs at least one observation");
    let dim = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == dim),
        "all observations must share a dimension"
    );
    // Active cluster bookkeeping. Cluster ids: 0..n are singletons; merges
    // create n+step. `dist` stores *squared* distances for Ward (the
    // Lance–Williams recurrence for Ward is exact on squared distances),
    // plain distances otherwise.
    let squared = method == Linkage::Ward;
    let mut active: Vec<usize> = (0..n).collect(); // current cluster ids
    let mut sizes: Vec<usize> = vec![1; n];
    // dist[i][j] between active slots i, j (slot order matches `active`).
    let mut dist: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| {
                    let d = euclidean(&points[i], &points[j]);
                    if squared {
                        d * d
                    } else {
                        d
                    }
                })
                .collect()
        })
        .collect();

    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    for step in 0..n.saturating_sub(1) {
        // Find the closest active pair.
        let m = active.len();
        let (mut bi, mut bj, mut best) = (0usize, 1usize, f64::INFINITY);
        #[allow(clippy::needless_range_loop)] // triangular index scan
        for i in 0..m {
            for j in (i + 1)..m {
                if dist[i][j] < best {
                    best = dist[i][j];
                    bi = i;
                    bj = j;
                }
            }
        }
        let (ci, cj) = (active[bi], active[bj]);
        let (ni, nj) = (sizes[ci], sizes[cj]);
        let new_size = ni + nj;
        let reported = if squared { best.sqrt() } else { best };
        merges.push(Merge {
            a: ci.min(cj),
            b: ci.max(cj),
            distance: reported,
            size: new_size,
        });

        // Lance–Williams update of distances from every other cluster k to
        // the new cluster, written into slot bi; slot bj is retired.
        for k in 0..m {
            if k == bi || k == bj {
                continue;
            }
            let (dki, dkj, dij) = (dist[k][bi], dist[k][bj], best);
            let nk = sizes[active[k]];
            let updated = match method {
                Linkage::Ward => {
                    let t = (ni + nk + nj) as f64;
                    ((ni + nk) as f64 * dki + (nj + nk) as f64 * dkj - nk as f64 * dij) / t
                }
                Linkage::Single => dki.min(dkj),
                Linkage::Complete => dki.max(dkj),
                Linkage::Average => (ni as f64 * dki + nj as f64 * dkj) / (ni + nj) as f64,
            };
            dist[k][bi] = updated;
            dist[bi][k] = updated;
        }
        // Retire slot bj: swap-remove from active set and distance matrix.
        let new_id = n + step;
        active[bi] = new_id;
        sizes.push(new_size);
        active.swap_remove(bj);
        dist.swap_remove(bj);
        for row in &mut dist {
            row.swap_remove(bj);
        }
    }
    LinkageResult { n, merges }
}

impl LinkageResult {
    /// Cut the tree at `threshold`: merges with `distance <= threshold` are
    /// applied; the resulting flat clusters are labelled `0..k` by order of
    /// first member appearance (observation index order).
    pub fn fcluster(&self, threshold: f64) -> Vec<usize> {
        // Union-find over cluster ids 0 .. n + merges.
        let total = self.n + self.merges.len();
        let mut parent: Vec<usize> = (0..total).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (step, m) in self.merges.iter().enumerate() {
            let new_id = self.n + step;
            if m.distance <= threshold {
                let ra = find(&mut parent, m.a);
                let rb = find(&mut parent, m.b);
                parent[ra] = new_id;
                parent[rb] = new_id;
            }
        }
        let mut label_of_root = std::collections::HashMap::new();
        let mut labels = Vec::with_capacity(self.n);
        for i in 0..self.n {
            let root = find(&mut parent, i);
            let next = label_of_root.len();
            labels.push(*label_of_root.entry(root).or_insert(next));
        }
        labels
    }

    /// Number of flat clusters produced at `threshold`.
    pub fn num_clusters(&self, threshold: f64) -> usize {
        self.fcluster(threshold)
            .iter()
            .copied()
            .max()
            .map_or(0, |m| m + 1)
    }

    /// Find the smallest merge height that yields at most `k` clusters,
    /// mimicking choosing scipy's `distance_threshold` from the dendrogram.
    pub fn threshold_for_clusters(&self, k: usize) -> f64 {
        let mut heights: Vec<f64> = self.merges.iter().map(|m| m.distance).collect();
        heights.sort_by(f64::total_cmp);
        for &h in &heights {
            if self.num_clusters(h) <= k {
                return h;
            }
        }
        heights.last().copied().unwrap_or(0.0)
    }

    /// Render the merge tree as an indented text dendrogram with heights —
    /// the textual equivalent of the paper's Fig. 6.
    pub fn dendrogram_text(&self, labels: &[String]) -> String {
        assert_eq!(labels.len(), self.n, "one label per observation");
        let mut out = String::new();
        if self.merges.is_empty() {
            if let Some(l) = labels.first() {
                out.push_str(l);
                out.push('\n');
            }
            return out;
        }
        let root = self.n + self.merges.len() - 1;
        self.render(root, 0, labels, &mut out);
        out
    }

    fn render(&self, id: usize, depth: usize, labels: &[String], out: &mut String) {
        let pad = "  ".repeat(depth);
        if id < self.n {
            out.push_str(&format!("{pad}{}\n", labels[id]));
        } else {
            let m = &self.merges[id - self.n];
            out.push_str(&format!("{pad}+-- h={:.4} (n={})\n", m.distance, m.size));
            self.render(m.a, depth + 1, labels, out);
            self.render(m.b, depth + 1, labels, out);
        }
    }
}

/// Standardize columns to zero mean / unit variance (a common preprocessing
/// step before clustering heterogeneous metrics). Constant columns are left
/// centred at zero.
pub fn standardize(points: &mut [Vec<f64>]) {
    if points.is_empty() {
        return;
    }
    let dim = points[0].len();
    let n = points.len() as f64;
    for d in 0..dim {
        let mean = points.iter().map(|p| p[d]).sum::<f64>() / n;
        let var = points.iter().map(|p| (p[d] - mean).powi(2)).sum::<f64>() / n;
        let sd = var.sqrt();
        for p in points.iter_mut() {
            p[d] = if sd > 0.0 { (p[d] - mean) / sd } else { 0.0 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![10.0, 10.0],
            vec![10.1, 10.0],
            vec![10.0, 10.1],
        ]
    }

    #[test]
    fn ward_separates_two_blobs() {
        let l = linkage(&two_blobs(), Linkage::Ward);
        assert_eq!(l.merges.len(), 5);
        // Cutting below the final (large) merge yields exactly 2 clusters.
        let final_h = l.merges.last().unwrap().distance;
        let labels = l.fcluster(final_h * 0.5);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn ward_matches_scipy_on_simple_example() {
        // scipy.cluster.hierarchy.linkage([[0],[2],[6]], 'ward') merges at
        // distance 2.0, then sqrt((2*16 + 2*36 - 1*4)/3) = sqrt(100/3).
        let pts = vec![vec![0.0], vec![2.0], vec![6.0]];
        let l = linkage(&pts, Linkage::Ward);
        assert!((l.merges[0].distance - 2.0).abs() < 1e-12);
        let expect = (100.0f64 / 3.0).sqrt();
        assert!(
            (l.merges[1].distance - expect).abs() < 1e-12,
            "got {}, expected {expect}",
            l.merges[1].distance
        );
    }

    #[test]
    fn single_linkage_matches_hand_computation() {
        // Points on a line at 0, 1, 3, 7: single-linkage merge heights are
        // 1 (0,1), 2 (cluster..3), 4 (..7).
        let pts = vec![vec![0.0], vec![1.0], vec![3.0], vec![7.0]];
        let l = linkage(&pts, Linkage::Single);
        let hs: Vec<f64> = l.merges.iter().map(|m| m.distance).collect();
        assert_eq!(hs, vec![1.0, 2.0, 4.0]);
    }

    #[test]
    fn complete_linkage_matches_hand_computation() {
        let pts = vec![vec![0.0], vec![1.0], vec![3.0], vec![7.0]];
        let l = linkage(&pts, Linkage::Complete);
        let hs: Vec<f64> = l.merges.iter().map(|m| m.distance).collect();
        assert_eq!(hs, vec![1.0, 3.0, 7.0]);
    }

    #[test]
    fn average_linkage_matches_hand_computation() {
        let pts = vec![vec![0.0], vec![1.0], vec![3.0], vec![7.0]];
        let l = linkage(&pts, Linkage::Average);
        let hs: Vec<f64> = l.merges.iter().map(|m| m.distance).collect();
        assert_eq!(hs[0], 1.0);
        assert!((hs[1] - 2.5).abs() < 1e-12, "avg of 3 and 2");
        assert!((hs[2] - (7.0 + 6.0 + 4.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_heights_are_monotone_for_ward() {
        let pts: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![((i * 37) % 11) as f64, ((i * 17) % 7) as f64])
            .collect();
        let l = linkage(&pts, Linkage::Ward);
        for w in l.merges.windows(2) {
            assert!(
                w[1].distance >= w[0].distance - 1e-12,
                "ward heights must be monotone"
            );
        }
    }

    #[test]
    fn fcluster_extremes() {
        let pts = two_blobs();
        let l = linkage(&pts, Linkage::Ward);
        assert_eq!(l.num_clusters(-1.0), pts.len(), "no merges applied");
        assert_eq!(l.num_clusters(f64::INFINITY), 1, "all merged");
    }

    #[test]
    fn fcluster_labels_in_first_appearance_order() {
        let pts = two_blobs();
        let l = linkage(&pts, Linkage::Ward);
        let labels = l.fcluster(1.0);
        assert_eq!(labels[0], 0, "first observation defines cluster 0");
    }

    #[test]
    fn threshold_for_clusters_finds_cut() {
        let l = linkage(&two_blobs(), Linkage::Ward);
        let t = l.threshold_for_clusters(2);
        assert_eq!(l.num_clusters(t), 2);
    }

    #[test]
    fn dendrogram_text_contains_all_labels() {
        let pts = two_blobs();
        let l = linkage(&pts, Linkage::Ward);
        let labels: Vec<String> = (0..pts.len()).map(|i| format!("K{i}")).collect();
        let text = l.dendrogram_text(&labels);
        for lab in &labels {
            assert!(text.contains(lab.as_str()));
        }
        assert!(text.contains("h="));
    }

    #[test]
    fn standardize_zero_mean_unit_var() {
        let mut pts = vec![vec![1.0, 5.0], vec![3.0, 5.0], vec![5.0, 5.0]];
        standardize(&mut pts);
        let mean0: f64 = pts.iter().map(|p| p[0]).sum::<f64>() / 3.0;
        assert!(mean0.abs() < 1e-12);
        // Constant column becomes all zeros instead of NaN.
        assert!(pts.iter().all(|p| p[1] == 0.0));
    }

    #[test]
    fn singleton_input() {
        let l = linkage(&[vec![1.0, 2.0]], Linkage::Ward);
        assert!(l.merges.is_empty());
        assert_eq!(l.fcluster(10.0), vec![0]);
        let text = l.dendrogram_text(&["only".to_string()]);
        assert!(text.contains("only"));
    }
}
