//! Agglomerative hierarchical clustering with Ward linkage.
//!
//! The paper clusters RAJAPerf kernels by their five-component top-down
//! (TMA) metric tuples using "agglomerative, bottom-up, hierarchical
//! clustering ... Euclidean distance ... the Ward merge strategy (Ward 1963) ...
//! distance threshold 1.4, identifying four distinct clusters" (§IV). Its
//! analysis pipeline calls scipy; this crate reimplements that algorithm —
//! the Lance–Williams recurrence over a distance matrix — with
//! scipy-compatible conventions:
//!
//! * observations are points in R^d, initial inter-cluster distances are
//!   Euclidean;
//! * the linkage matrix rows are `(cluster_a, cluster_b, distance, size)`
//!   with new clusters numbered `n, n+1, ...` in merge order, `a`/`b`
//!   sorted ascending;
//! * [`LinkageResult::fcluster`] cuts the tree at a distance threshold
//!   (scipy's `criterion='distance'`), relabelling clusters `0..k` in order
//!   of first appearance;
//! * [`LinkageResult::dendrogram_text`] renders the merge tree for Fig. 6.
//!
//! For the 60–80 kernel suite the textbook Lance–Williams matrix algorithm
//! (O(n³) time / O(n²) space) is ample and is kept for every linkage; Ward
//! on larger inputs (corpus-scale profile clustering) dispatches to an
//! O(n²)-time, O(n)-space nearest-neighbor-chain over cluster centroids,
//! which produces the same dendrogram (NN-chain is exact for reducible
//! linkages, and Ward is reducible).

pub mod quality;

pub use quality::{sampled_silhouette, select_clusters, silhouette_score, KSelection};

/// Above this many observations, [`linkage`] with [`Linkage::Ward`] uses the
/// nearest-neighbor-chain algorithm. At or below it, the Lance–Williams
/// matrix path runs instead so that historical small-input merge orders
/// (including tie resolution) are preserved bit-for-bit.
pub const NN_CHAIN_THRESHOLD: usize = 128;

/// Linkage update strategies (a subset of scipy's).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Ward's minimum-variance criterion (the paper's choice).
    Ward,
    /// Nearest-neighbour (minimum) linkage.
    Single,
    /// Furthest-neighbour (maximum) linkage.
    Complete,
    /// Unweighted average (UPGMA) linkage.
    Average,
}

/// One merge step of the agglomeration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// First merged cluster id (smaller id).
    pub a: usize,
    /// Second merged cluster id.
    pub b: usize,
    /// Inter-cluster distance at which the merge happened.
    pub distance: f64,
    /// Number of original observations in the new cluster.
    pub size: usize,
}

/// The result of [`linkage`]: `n - 1` merges over `n` observations.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkageResult {
    /// Number of original observations.
    pub n: usize,
    /// Merge steps in the order performed. Step `i` creates cluster `n + i`.
    pub merges: Vec<Merge>,
}

/// Euclidean distance between two equal-length points.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Compute the hierarchical clustering of `points` under `method`.
///
/// Ward linkage on more than [`NN_CHAIN_THRESHOLD`] observations runs the
/// O(n²) nearest-neighbor-chain ([`nn_chain_ward`]); everything else runs
/// the Lance–Williams distance-matrix recurrence.
///
/// # Panics
/// Panics on an empty input or ragged point dimensions.
pub fn linkage(points: &[Vec<f64>], method: Linkage) -> LinkageResult {
    check_points(points);
    if method == Linkage::Ward && points.len() > NN_CHAIN_THRESHOLD {
        return nn_chain_ward(points);
    }
    linkage_matrix(points, method)
}

fn check_points(points: &[Vec<f64>]) {
    assert!(!points.is_empty(), "linkage needs at least one observation");
    let dim = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == dim),
        "all observations must share a dimension"
    );
}

/// Lance–Williams matrix agglomeration (all linkage methods).
fn linkage_matrix(points: &[Vec<f64>], method: Linkage) -> LinkageResult {
    let n = points.len();
    // Active cluster bookkeeping. Cluster ids: 0..n are singletons; merges
    // create n+step. `dist` stores *squared* distances for Ward (the
    // Lance–Williams recurrence for Ward is exact on squared distances),
    // plain distances otherwise.
    let squared = method == Linkage::Ward;
    let mut active: Vec<usize> = (0..n).collect(); // current cluster ids
    let mut sizes: Vec<usize> = vec![1; n];
    // dist[i][j] between active slots i, j (slot order matches `active`).
    let mut dist: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| {
                    let d = euclidean(&points[i], &points[j]);
                    if squared {
                        d * d
                    } else {
                        d
                    }
                })
                .collect()
        })
        .collect();

    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    for step in 0..n.saturating_sub(1) {
        // Find the closest active pair.
        let m = active.len();
        let (mut bi, mut bj, mut best) = (0usize, 1usize, f64::INFINITY);
        #[allow(clippy::needless_range_loop)] // triangular index scan
        for i in 0..m {
            for j in (i + 1)..m {
                if dist[i][j] < best {
                    best = dist[i][j];
                    bi = i;
                    bj = j;
                }
            }
        }
        let (ci, cj) = (active[bi], active[bj]);
        let (ni, nj) = (sizes[ci], sizes[cj]);
        let new_size = ni + nj;
        let reported = if squared { best.sqrt() } else { best };
        merges.push(Merge {
            a: ci.min(cj),
            b: ci.max(cj),
            distance: reported,
            size: new_size,
        });

        // Lance–Williams update of distances from every other cluster k to
        // the new cluster, written into slot bi; slot bj is retired.
        for k in 0..m {
            if k == bi || k == bj {
                continue;
            }
            let (dki, dkj, dij) = (dist[k][bi], dist[k][bj], best);
            let nk = sizes[active[k]];
            let updated = match method {
                Linkage::Ward => {
                    let t = (ni + nk + nj) as f64;
                    ((ni + nk) as f64 * dki + (nj + nk) as f64 * dkj - nk as f64 * dij) / t
                }
                Linkage::Single => dki.min(dkj),
                Linkage::Complete => dki.max(dkj),
                Linkage::Average => (ni as f64 * dki + nj as f64 * dkj) / (ni + nj) as f64,
            };
            dist[k][bi] = updated;
            dist[bi][k] = updated;
        }
        // Retire slot bj: swap-remove from active set and distance matrix.
        let new_id = n + step;
        active[bi] = new_id;
        sizes.push(new_size);
        active.swap_remove(bj);
        dist.swap_remove(bj);
        for row in &mut dist {
            row.swap_remove(bj);
        }
    }
    LinkageResult { n, merges }
}

/// Ward linkage via the nearest-neighbor-chain algorithm: O(n²·d) time and
/// O(n·d) space, no distance matrix.
///
/// Ward's inter-cluster distance has a closed centroid form,
/// d²(A, B) = 2·|A|·|B| / (|A| + |B|) · ‖c_A − c_B‖², so clusters can be
/// represented by (centroid, size) alone. The chain repeatedly extends to a
/// nearest neighbour until it finds a reciprocal nearest pair, which is
/// merged immediately — valid for any *reducible* linkage (merging two
/// clusters never brings the merged cluster closer to a third than the
/// nearer of its parts was), which Ward is. Merges therefore come out in
/// chain order, not height order; a stable sort by height plus a scipy-style
/// union-find relabel restores the canonical `(a, b, distance, size)` rows
/// with new clusters numbered `n + step` in sorted order. The stable sort
/// keeps a child merge ahead of its equal-height parent because the child is
/// always recorded first and Ward heights are monotone along any root path.
pub fn nn_chain_ward(points: &[Vec<f64>]) -> LinkageResult {
    check_points(points);
    let n = points.len();
    // Per-slot cluster state; a merge collapses into the smaller slot id and
    // retires the other. `rep` is a representative observation index used to
    // identify the cluster during the final relabel.
    let mut centroid: Vec<Vec<f64>> = points.to_vec();
    let mut size: Vec<f64> = vec![1.0; n];
    let mut active: Vec<bool> = vec![true; n];
    let mut rep: Vec<usize> = (0..n).collect();
    let ward_d2 = |a: usize, b: usize, centroid: &[Vec<f64>], size: &[f64]| {
        let s: f64 = centroid[a]
            .iter()
            .zip(&centroid[b])
            .map(|(x, y)| (x - y) * (x - y))
            .sum();
        2.0 * size[a] * size[b] / (size[a] + size[b]) * s
    };

    // Raw merges in chain order: (rep_a, rep_b, distance, merged size).
    let mut raw: Vec<(usize, usize, f64, usize)> = Vec::with_capacity(n.saturating_sub(1));
    let mut chain: Vec<usize> = Vec::with_capacity(n);
    for _ in 0..n.saturating_sub(1) {
        if chain.is_empty() {
            let first = active
                .iter()
                .position(|&a| a)
                .expect("an active cluster remains");
            chain.push(first);
        }
        loop {
            let a = *chain.last().expect("chain is non-empty");
            let prev = if chain.len() >= 2 {
                Some(chain[chain.len() - 2])
            } else {
                None
            };
            // Seed the argmin with the previous chain element so that on
            // exact distance ties the chain terminates (reciprocity wins)
            // instead of cycling.
            let (mut best, mut best_j) = match prev {
                Some(p) => (ward_d2(a, p, &centroid, &size), p),
                None => (f64::INFINITY, usize::MAX),
            };
            for (j, &alive) in active.iter().enumerate() {
                if !alive || j == a || Some(j) == prev {
                    continue;
                }
                let d = ward_d2(a, j, &centroid, &size);
                // Strict < : on ties the previous chain element (the seed)
                // wins, guaranteeing termination; among other candidates the
                // smallest index wins, keeping the walk deterministic.
                if d < best {
                    best = d;
                    best_j = j;
                }
            }
            if Some(best_j) == prev {
                // Reciprocal nearest neighbours: merge a and best_j.
                chain.pop();
                chain.pop();
                let (x, y) = (a, best_j);
                let keep = x.min(y);
                let drop_slot = x.max(y);
                let merged = size[x] + size[y];
                let c: Vec<f64> = centroid[x]
                    .iter()
                    .zip(&centroid[y])
                    .map(|(cx, cy)| (size[x] * cx + size[y] * cy) / merged)
                    .collect();
                centroid[keep] = c;
                raw.push((rep[x], rep[y], best.sqrt(), merged as usize));
                rep[keep] = rep[x].min(rep[y]);
                size[keep] = merged;
                active[drop_slot] = false;
                break;
            }
            chain.push(best_j);
        }
    }

    // Canonicalize: stable-sort by height, then relabel clusters in merge
    // order with a union-find over representative observations.
    let mut order: Vec<usize> = (0..raw.len()).collect();
    order.sort_by(|&i, &j| raw[i].2.total_cmp(&raw[j].2));
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    // cluster_id[root observation] = current cluster id of that root's set.
    let mut cluster_id: Vec<usize> = (0..n).collect();
    let mut merges = Vec::with_capacity(raw.len());
    for (step, &mi) in order.iter().enumerate() {
        let (ra, rb, d, sz) = raw[mi];
        let fa = find(&mut parent, ra);
        let fb = find(&mut parent, rb);
        let (ca, cb) = (cluster_id[fa], cluster_id[fb]);
        merges.push(Merge {
            a: ca.min(cb),
            b: ca.max(cb),
            distance: d,
            size: sz,
        });
        parent[fb] = fa;
        cluster_id[fa] = n + step;
    }
    LinkageResult { n, merges }
}

impl LinkageResult {
    /// Cut the tree at `threshold`: merges with `distance <= threshold` are
    /// applied; the resulting flat clusters are labelled `0..k` by order of
    /// first member appearance (observation index order).
    pub fn fcluster(&self, threshold: f64) -> Vec<usize> {
        // Union-find over cluster ids 0 .. n + merges.
        let total = self.n + self.merges.len();
        let mut parent: Vec<usize> = (0..total).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (step, m) in self.merges.iter().enumerate() {
            let new_id = self.n + step;
            if m.distance <= threshold {
                let ra = find(&mut parent, m.a);
                let rb = find(&mut parent, m.b);
                parent[ra] = new_id;
                parent[rb] = new_id;
            }
        }
        let mut label_of_root = std::collections::HashMap::new();
        let mut labels = Vec::with_capacity(self.n);
        for i in 0..self.n {
            let root = find(&mut parent, i);
            let next = label_of_root.len();
            labels.push(*label_of_root.entry(root).or_insert(next));
        }
        labels
    }

    /// Number of flat clusters produced at `threshold`.
    pub fn num_clusters(&self, threshold: f64) -> usize {
        self.fcluster(threshold)
            .iter()
            .copied()
            .max()
            .map_or(0, |m| m + 1)
    }

    /// Find the smallest merge height that yields at most `k` clusters,
    /// mimicking choosing scipy's `distance_threshold` from the dendrogram.
    pub fn threshold_for_clusters(&self, k: usize) -> f64 {
        let mut heights: Vec<f64> = self.merges.iter().map(|m| m.distance).collect();
        heights.sort_by(f64::total_cmp);
        for &h in &heights {
            if self.num_clusters(h) <= k {
                return h;
            }
        }
        heights.last().copied().unwrap_or(0.0)
    }

    /// Render the merge tree as an indented text dendrogram with heights —
    /// the textual equivalent of the paper's Fig. 6.
    pub fn dendrogram_text(&self, labels: &[String]) -> String {
        assert_eq!(labels.len(), self.n, "one label per observation");
        let mut out = String::new();
        if self.merges.is_empty() {
            if let Some(l) = labels.first() {
                out.push_str(l);
                out.push('\n');
            }
            return out;
        }
        let root = self.n + self.merges.len() - 1;
        self.render(root, 0, labels, &mut out);
        out
    }

    fn render(&self, id: usize, depth: usize, labels: &[String], out: &mut String) {
        let pad = "  ".repeat(depth);
        if id < self.n {
            out.push_str(&format!("{pad}{}\n", labels[id]));
        } else {
            let m = &self.merges[id - self.n];
            out.push_str(&format!("{pad}+-- h={:.4} (n={})\n", m.distance, m.size));
            self.render(m.a, depth + 1, labels, out);
            self.render(m.b, depth + 1, labels, out);
        }
    }
}

/// Standardize columns to zero mean / unit variance (a common preprocessing
/// step before clustering heterogeneous metrics). Constant columns are left
/// centred at zero.
pub fn standardize(points: &mut [Vec<f64>]) {
    if points.is_empty() {
        return;
    }
    let dim = points[0].len();
    let n = points.len() as f64;
    for d in 0..dim {
        let mean = points.iter().map(|p| p[d]).sum::<f64>() / n;
        let var = points.iter().map(|p| (p[d] - mean).powi(2)).sum::<f64>() / n;
        let sd = var.sqrt();
        for p in points.iter_mut() {
            p[d] = if sd > 0.0 { (p[d] - mean) / sd } else { 0.0 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![10.0, 10.0],
            vec![10.1, 10.0],
            vec![10.0, 10.1],
        ]
    }

    #[test]
    fn ward_separates_two_blobs() {
        let l = linkage(&two_blobs(), Linkage::Ward);
        assert_eq!(l.merges.len(), 5);
        // Cutting below the final (large) merge yields exactly 2 clusters.
        let final_h = l.merges.last().unwrap().distance;
        let labels = l.fcluster(final_h * 0.5);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn ward_matches_scipy_on_simple_example() {
        // scipy.cluster.hierarchy.linkage([[0],[2],[6]], 'ward') merges at
        // distance 2.0, then sqrt((2*16 + 2*36 - 1*4)/3) = sqrt(100/3).
        let pts = vec![vec![0.0], vec![2.0], vec![6.0]];
        let l = linkage(&pts, Linkage::Ward);
        assert!((l.merges[0].distance - 2.0).abs() < 1e-12);
        let expect = (100.0f64 / 3.0).sqrt();
        assert!(
            (l.merges[1].distance - expect).abs() < 1e-12,
            "got {}, expected {expect}",
            l.merges[1].distance
        );
    }

    #[test]
    fn single_linkage_matches_hand_computation() {
        // Points on a line at 0, 1, 3, 7: single-linkage merge heights are
        // 1 (0,1), 2 (cluster..3), 4 (..7).
        let pts = vec![vec![0.0], vec![1.0], vec![3.0], vec![7.0]];
        let l = linkage(&pts, Linkage::Single);
        let hs: Vec<f64> = l.merges.iter().map(|m| m.distance).collect();
        assert_eq!(hs, vec![1.0, 2.0, 4.0]);
    }

    #[test]
    fn complete_linkage_matches_hand_computation() {
        let pts = vec![vec![0.0], vec![1.0], vec![3.0], vec![7.0]];
        let l = linkage(&pts, Linkage::Complete);
        let hs: Vec<f64> = l.merges.iter().map(|m| m.distance).collect();
        assert_eq!(hs, vec![1.0, 3.0, 7.0]);
    }

    #[test]
    fn average_linkage_matches_hand_computation() {
        let pts = vec![vec![0.0], vec![1.0], vec![3.0], vec![7.0]];
        let l = linkage(&pts, Linkage::Average);
        let hs: Vec<f64> = l.merges.iter().map(|m| m.distance).collect();
        assert_eq!(hs[0], 1.0);
        assert!((hs[1] - 2.5).abs() < 1e-12, "avg of 3 and 2");
        assert!((hs[2] - (7.0 + 6.0 + 4.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_heights_are_monotone_for_ward() {
        let pts: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![((i * 37) % 11) as f64, ((i * 17) % 7) as f64])
            .collect();
        let l = linkage(&pts, Linkage::Ward);
        for w in l.merges.windows(2) {
            assert!(
                w[1].distance >= w[0].distance - 1e-12,
                "ward heights must be monotone"
            );
        }
    }

    #[test]
    fn fcluster_extremes() {
        let pts = two_blobs();
        let l = linkage(&pts, Linkage::Ward);
        assert_eq!(l.num_clusters(-1.0), pts.len(), "no merges applied");
        assert_eq!(l.num_clusters(f64::INFINITY), 1, "all merged");
    }

    #[test]
    fn fcluster_labels_in_first_appearance_order() {
        let pts = two_blobs();
        let l = linkage(&pts, Linkage::Ward);
        let labels = l.fcluster(1.0);
        assert_eq!(labels[0], 0, "first observation defines cluster 0");
    }

    #[test]
    fn threshold_for_clusters_finds_cut() {
        let l = linkage(&two_blobs(), Linkage::Ward);
        let t = l.threshold_for_clusters(2);
        assert_eq!(l.num_clusters(t), 2);
    }

    #[test]
    fn dendrogram_text_contains_all_labels() {
        let pts = two_blobs();
        let l = linkage(&pts, Linkage::Ward);
        let labels: Vec<String> = (0..pts.len()).map(|i| format!("K{i}")).collect();
        let text = l.dendrogram_text(&labels);
        for lab in &labels {
            assert!(text.contains(lab.as_str()));
        }
        assert!(text.contains("h="));
    }

    #[test]
    fn standardize_zero_mean_unit_var() {
        let mut pts = vec![vec![1.0, 5.0], vec![3.0, 5.0], vec![5.0, 5.0]];
        standardize(&mut pts);
        let mean0: f64 = pts.iter().map(|p| p[0]).sum::<f64>() / 3.0;
        assert!(mean0.abs() < 1e-12);
        // Constant column becomes all zeros instead of NaN.
        assert!(pts.iter().all(|p| p[1] == 0.0));
    }

    #[test]
    fn singleton_input() {
        let l = linkage(&[vec![1.0, 2.0]], Linkage::Ward);
        assert!(l.merges.is_empty());
        assert_eq!(l.fcluster(10.0), vec![0]);
        let text = l.dendrogram_text(&["only".to_string()]);
        assert!(text.contains("only"));
    }

    /// SplitMix64: deterministic, well-mixed synthetic coordinates.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                (0..dim)
                    .map(|_| (splitmix(&mut s) >> 11) as f64 / (1u64 << 53) as f64 * 10.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn nn_chain_matches_matrix_ward() {
        for seed in [1u64, 42, 1234] {
            let pts = random_points(60, 5, seed);
            let matrix = linkage_matrix(&pts, Linkage::Ward);
            let chain = nn_chain_ward(&pts);
            assert_eq!(matrix.merges.len(), chain.merges.len());
            for (m, c) in matrix.merges.iter().zip(&chain.merges) {
                assert_eq!((m.a, m.b, m.size), (c.a, c.b, c.size), "seed {seed}");
                assert!(
                    (m.distance - c.distance).abs() <= 1e-9 * m.distance.max(1.0),
                    "seed {seed}: matrix {} vs chain {}",
                    m.distance,
                    c.distance
                );
            }
        }
    }

    #[test]
    fn nn_chain_dispatches_above_threshold_and_recovers_blobs() {
        // Four well-separated blobs of 50 points each: n = 200 takes the
        // NN-chain path through the public `linkage` entry point.
        let centers = [[0.0, 0.0], [20.0, 0.0], [0.0, 20.0], [20.0, 20.0]];
        let mut s = 7u64;
        let mut pts = Vec::new();
        for c in &centers {
            for _ in 0..50 {
                let jx = (splitmix(&mut s) >> 11) as f64 / (1u64 << 53) as f64;
                let jy = (splitmix(&mut s) >> 11) as f64 / (1u64 << 53) as f64;
                pts.push(vec![c[0] + jx, c[1] + jy]);
            }
        }
        let l = linkage(&pts, Linkage::Ward);
        assert_eq!(l.merges.len(), pts.len() - 1);
        for w in l.merges.windows(2) {
            assert!(w[1].distance >= w[0].distance, "sorted heights");
        }
        let t = l.threshold_for_clusters(4);
        let labels = l.fcluster(t);
        assert_eq!(labels.iter().copied().max().unwrap() + 1, 4);
        // Every blob lands in one cluster.
        for blob in 0..4 {
            let first = labels[blob * 50];
            assert!(
                labels[blob * 50..(blob + 1) * 50].iter().all(|&l| l == first),
                "blob {blob} split across clusters"
            );
        }
    }

    #[test]
    fn nn_chain_survives_duplicate_points() {
        // Distance-zero ties: the chain must terminate and report the
        // duplicate merges at height 0 first.
        let mut pts = vec![vec![1.0, 1.0]; 5];
        pts.extend(vec![vec![9.0, 9.0]; 5]);
        let l = nn_chain_ward(&pts);
        assert_eq!(l.merges.len(), 9);
        assert_eq!(l.merges[0].distance, 0.0);
        for w in l.merges.windows(2) {
            assert!(w[1].distance >= w[0].distance);
        }
        let labels = l.fcluster(l.threshold_for_clusters(2));
        assert_eq!(labels.iter().copied().max().unwrap() + 1, 2);
        assert!(labels[..5].iter().all(|&x| x == labels[0]));
        assert!(labels[5..].iter().all(|&x| x == labels[5]));
    }

    #[test]
    fn nn_chain_singleton_and_pair() {
        let l = nn_chain_ward(&[vec![3.0]]);
        assert!(l.merges.is_empty());
        let l = nn_chain_ward(&[vec![0.0], vec![4.0]]);
        assert_eq!(l.merges.len(), 1);
        assert_eq!((l.merges[0].a, l.merges[0].b), (0, 1));
        assert!((l.merges[0].distance - 4.0).abs() < 1e-12);
    }
}
