#!/usr/bin/env bash
# Full verification gate for RAJAPerf-rs: build, lint, and test everything.
#
#   scripts/verify.sh           # tier-1 + clippy + workspace tests
#   scripts/verify.sh --quick   # tier-1 only (build + root tests)
#
# Lint policy: `cargo clippy --all-targets -- -D warnings` must be clean
# across the whole workspace, vendored crates included.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

if [[ "${1:-}" == "--quick" ]]; then
    echo "verify: tier-1 OK (quick mode, clippy and workspace tests skipped)"
    exit 0
fi

echo "== lint: cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

# Unsafe audit: every `unsafe` site in first-party code (crates/ plus the
# vendored-but-maintained vendor/rayon) must be justified by a `// SAFETY:`
# comment or a `# Safety` doc section within the preceding 8 lines. The
# remaining vendor/ crates are third-party imports and exempt.
echo "== lint: unsafe sites carry SAFETY justifications =="
UNSAFE_VIOLATIONS=$(
    grep -rln "unsafe" crates vendor/rayon/src --include="*.rs" | while read -r f; do
        awk '
            /SAFETY:|# Safety/ { last_safety = NR }
            /unsafe/ {
                line = $0
                sub(/^[ \t]+/, "", line)
                if (line ~ /^\/\//) next      # comment mentioning unsafe
                if (line ~ /^#/) next          # attribute, e.g. unsafe_op_in_unsafe_fn
                if ($0 ~ /SAFETY:/) next       # same-line justification
                if (NR - last_safety > 8) printf "%s:%d: %s\n", FILENAME, NR, $0
            }
        ' "$f"
    done
)
if [[ -n "$UNSAFE_VIOLATIONS" ]]; then
    echo "verify: FAIL — unsafe sites missing SAFETY justification:" >&2
    echo "$UNSAFE_VIOLATIONS" >&2
    exit 1
fi
echo "unsafe-audit: all first-party unsafe sites justified"

# Bounded model checker: exhaustively explore the shared-pool and caliper
# concurrency protocols under `--cfg simsched`. Exhaustive DFS order is
# deterministic by construction; the seeded-random test pins seed 0xC0FFEE.
# A separate target dir keeps the cfg'd build from thrashing the main cache.
echo "== simsched: bounded model check of pool/caliper protocols =="
RUSTFLAGS="--cfg simsched --check-cfg cfg(simsched)" \
    CARGO_TARGET_DIR=target/simsched \
    cargo test -p simsched --release -- --nocapture 2>&1 | tee /tmp/simsched-verify.log \
    | grep -E "schedules|test result" || true
if grep -qE "test result: FAILED|panicked" /tmp/simsched-verify.log; then
    echo "verify: FAIL — simsched model check failed" >&2
    exit 1
fi
grep -q "schedules" /tmp/simsched-verify.log \
    || { echo "verify: FAIL — no explored-schedule counts in model-check output" >&2; exit 1; }
echo "simsched: model check clean (schedule counts above)"

# Miri smoke: strictest aliasing/UB interpreter over the simsched unit tests.
# Miri is an optional rustup component; skip with a notice when absent so the
# gate degrades gracefully on images without it.
echo "== miri: smoke (optional) =="
if cargo miri --version >/dev/null 2>&1; then
    MIRIFLAGS="-Zmiri-disable-isolation" cargo miri test -p simsched --lib
    echo "miri: simsched unit tests clean"
else
    echo "miri: not installed, skipping (install with: rustup component add miri)"
fi

echo "== full: cargo test --workspace --release =="
cargo test --workspace --release

# Launch fast path: the 1-D device fast path must produce bitwise-identical
# results to the generic block-structured path for every registry kernel,
# and the sanitizer's positive controls must still fire.
echo "== fastpath: cargo test --release -p kernels --test fastpath_equivalence =="
cargo test --release -p kernels --test fastpath_equivalence

# Smoke-run the launch-overhead bench harness (one iteration per benchmark,
# no timing); full measured runs go through scripts/bench.sh.
echo "== bench: cargo bench -p rajaperf-bench --bench launch -- --test =="
cargo bench -p rajaperf-bench --bench launch -- --test

# The release driver binary lives in crates/suite; the root-package build
# above does not refresh it, so build it explicitly before driving it.
echo "== cli: full-registry --checksums =="
cargo build --release --workspace
RAJAPERF=target/release/rajaperf
"$RAJAPERF" --checksums --size 20000 --reps 1 | tail -1 | grep -q "ALL CHECKSUMS PASS"
echo "checksums: ALL CHECKSUMS PASS"

echo "== cli: --sweep emits one profile per cell =="
SWEEP_DIR=$(mktemp -d)
trap 'rm -rf "$SWEEP_DIR"' EXIT
"$RAJAPERF" --sweep --groups Stream --size 100000 --reps 2 \
    --sweep-block-sizes 128,256 --sweep-dir "$SWEEP_DIR" >/dev/null
profiles=$(ls "$SWEEP_DIR"/profiles/*.cali.json | wc -l)
if [[ "$profiles" -ne 12 ]]; then
    echo "verify: FAIL — expected 12 sweep profiles (6 variants x 2 block sizes), got $profiles" >&2
    exit 1
fi
[[ -f "$SWEEP_DIR/manifest.json" ]] || { echo "verify: FAIL — sweep manifest missing" >&2; exit 1; }
echo "sweep: 12 distinct profiles + manifest"

echo "== cli: --ranks 4 sweep gathers into the --ranks 1 manifest =="
RANKS_DIR=$(mktemp -d)
RAJAPERF_ABS="$PWD/$RAJAPERF"
for n in 1 4; do
    mkdir -p "$RANKS_DIR/r$n"
    (cd "$RANKS_DIR/r$n" && "$RAJAPERF_ABS" --sweep --kernels Basic_DAXPY \
        --size 100000 --reps 2 --sweep-block-sizes 128,256 \
        --sweep-dir sweep --ranks "$n" >/dev/null)
done
cmp "$RANKS_DIR/r1/sweep/manifest.json" "$RANKS_DIR/r4/sweep/manifest.json" \
    || { echo "verify: FAIL — ranked sweep manifest diverged from single-rank" >&2; exit 1; }
rm -rf "$RANKS_DIR"
echo "ranks: 4-rank campaign manifest byte-identical to single-rank"

# Process-isolated ranks: each rank is a spawned child under a supervising
# restart loop. Kill -9 one child mid-campaign; the supervisor must requeue
# its cell, respawn it, and finish with the single-rank golden manifest.
# Deterministic stall faults widen the kill window without failing kernels.
echo "== cli: --rank-isolation=process survives kill -9 of a child rank =="
PROC_DIR=$(mktemp -d)
PROC_FAULTS='suite.kernel=stall(150),seed=1'
mkdir -p "$PROC_DIR/golden" "$PROC_DIR/proc"
(cd "$PROC_DIR/golden" && "$RAJAPERF_ABS" --sweep --kernels Basic_DAXPY \
    --size 100000 --reps 2 --sweep-block-sizes 128,256 \
    --sweep-dir sweep --ranks 1 --faults "$PROC_FAULTS" >/dev/null)
(cd "$PROC_DIR/proc" && "$RAJAPERF_ABS" --sweep --kernels Basic_DAXPY \
    --size 100000 --reps 2 --sweep-block-sizes 128,256 \
    --sweep-dir sweep --ranks 4 --rank-isolation process \
    --faults "$PROC_FAULTS" >"$PROC_DIR/proc.out") &
PROC_PID=$!
VICTIM=""
for _ in $(seq 1 100); do
    VICTIM=$(pgrep -P "$PROC_PID" -f -- "--rank-worker" 2>/dev/null | head -1) \
        && [[ -n "$VICTIM" ]] && break
    # The sweep runs in a subshell: its rajaperf child is the supervisor.
    SUPERVISOR=$(pgrep -P "$PROC_PID" 2>/dev/null | head -1) || true
    if [[ -n "${SUPERVISOR:-}" ]]; then
        VICTIM=$(pgrep -P "$SUPERVISOR" -f -- "--rank-worker" 2>/dev/null | head -1) || true
        [[ -n "$VICTIM" ]] && break
    fi
    sleep 0.05
done
[[ -n "$VICTIM" ]] || { echo "verify: FAIL — no rank worker appeared to kill" >&2; exit 1; }
kill -9 "$VICTIM"
wait "$PROC_PID" \
    || { echo "verify: FAIL — process campaign died with its killed child" >&2; exit 1; }
grep -q "respawn" "$PROC_DIR/proc.out" \
    || { echo "verify: FAIL — supervisor did not report the respawn" >&2; exit 1; }
cmp "$PROC_DIR/golden/sweep/manifest.json" "$PROC_DIR/proc/sweep/manifest.json" \
    || { echo "verify: FAIL — process-ranked manifest diverged after child kill" >&2; exit 1; }
rm -rf "$PROC_DIR"
echo "process ranks: child killed mid-campaign, respawned, manifest byte-identical"

# A panicking rank must poison the barrier and abort its peers instead of
# deadlocking the campaign (regression for the mid-barrier hang).
echo "== simcomm: rank-panic cannot hang the runtime =="
cargo test --release -p simcomm rank_panic

echo "== cli: --trace exports a parseable Chrome trace =="
TRACE_JSON="$SWEEP_DIR/smoke.trace.json"
"$RAJAPERF" --variants Base_Seq --kernels Stream_TRIAD --size 100000 --reps 2 \
    --trace "$TRACE_JSON" >/dev/null
python3 - "$TRACE_JSON" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
begins = [(e["tid"], e["name"]) for e in events if e["ph"] == "B"]
ends = [(e["tid"], e["name"]) for e in events if e["ph"] == "E"]
complete = sum(1 for b in begins if b in ends)
assert complete >= 1, "no complete begin/end event in trace"
print(f"trace: {len(events)} events, {complete} complete region begin/ends")
EOF

echo "== cli: fault injection isolates the failing kernel (exit 5) =="
set +e
FAULT_OUT=$("$RAJAPERF" --kernels Stream_TRIAD,Basic_DAXPY --variant Base_SimGpu \
    --size 100000 --reps 2 --faults 'gpusim.launch@Stream_TRIAD=panic:1.0,seed=1' 2>/dev/null)
FAULT_CODE=$?
set -e
if [[ "$FAULT_CODE" -ne 5 ]]; then
    echo "verify: FAIL — expected exit code 5 (kernel failures), got $FAULT_CODE" >&2
    exit 1
fi
echo "$FAULT_OUT" | grep -q "Stream_TRIAD.*FAILED" \
    || { echo "verify: FAIL — Stream_TRIAD not reported FAILED" >&2; exit 1; }
echo "$FAULT_OUT" | grep -q "1 passed, 1 failed" \
    || { echo "verify: FAIL — healthy kernel did not survive the injected panic" >&2; exit 1; }
echo "faults: injected panic isolated, exit code 5"

echo "== cli: same-seed fault runs reproduce identical outcomes =="
set +e
RUN_A=$("$RAJAPERF" --variant Base_SimGpu --size 20000 --reps 1 \
    --faults 'gpusim.launch=panic:0.1,seed=7' 2>/dev/null | awk '/Kernel outcomes/,0')
RUN_B=$("$RAJAPERF" --variant Base_SimGpu --size 20000 --reps 1 \
    --faults 'gpusim.launch=panic:0.1,seed=7' 2>/dev/null | awk '/Kernel outcomes/,0')
set -e
if [[ -z "$RUN_A" || "$RUN_A" != "$RUN_B" ]]; then
    echo "verify: FAIL — seeded fault runs diverged" >&2
    exit 1
fi
echo "faults: seed=7 outcome set reproduced exactly"

echo "== cli: analyzer skips truncated profiles with a warning =="
ANALYZE=target/release/rajaperf-analyze
GOOD_PROFILE=$(ls "$SWEEP_DIR"/profiles/*.cali.json | head -1)
INGEST_DIR="$SWEEP_DIR/ingest-smoke"
mkdir -p "$INGEST_DIR"
cp "$GOOD_PROFILE" "$INGEST_DIR/good.cali.json"
head -c 40 "$GOOD_PROFILE" > "$INGEST_DIR/torn.cali.json"
ANALYZE_ERR=$("$ANALYZE" "$INGEST_DIR" 2>&1 >/dev/null)
echo "$ANALYZE_ERR" | grep -q "torn.cali.json" \
    || { echo "verify: FAIL — truncated profile not reported by analyzer" >&2; exit 1; }
echo "$ANALYZE_ERR" | grep -q "1 of 2 profile(s) skipped" \
    || { echo "verify: FAIL — analyzer skip count wrong: $ANALYZE_ERR" >&2; exit 1; }
echo "analyze: truncated profile skipped with warning, composition continued"

echo "== daemon: rajaperfd smoke (run, store hit, graceful shutdown) =="
DAEMON=target/release/rajaperfd
CLIENT=target/release/rajaperf-client
DAEMON_DIR="$SWEEP_DIR/daemon-smoke"
mkdir -p "$DAEMON_DIR"
DSOCK="$DAEMON_DIR/d.sock"
"$DAEMON" --socket "$DSOCK" --store "$DAEMON_DIR/store" --workers 2 &
DAEMON_PID=$!
for _ in $(seq 1 50); do
    [[ -S "$DSOCK" ]] && break
    sleep 0.1
done
"$CLIENT" --socket "$DSOCK" ping | grep -q '"event":"pong"' \
    || { echo "verify: FAIL — daemon did not answer ping" >&2; exit 1; }
RUN1=$("$CLIENT" --socket "$DSOCK" run -- --kernels Basic_DAXPY --size 100000 --reps 2)
echo "$RUN1" | grep -q '"event":"progress"' \
    || { echo "verify: FAIL — daemon run streamed no progress events" >&2; exit 1; }
echo "$RUN1" | grep -q '"cached":false' \
    || { echo "verify: FAIL — first daemon run should not be cached" >&2; exit 1; }
ls "$DAEMON_DIR"/store/objects/*/*.json >/dev/null 2>&1 \
    || { echo "verify: FAIL — no object persisted in the profile store" >&2; exit 1; }
RUN2=$("$CLIENT" --socket "$DSOCK" run -- --kernels Basic_DAXPY --size 100000 --reps 2)
echo "$RUN2" | grep -q '"cached":true' \
    || { echo "verify: FAIL — identical request not served from the store" >&2; exit 1; }
if echo "$RUN2" | grep -q '"event":"progress"'; then
    echo "verify: FAIL — store hit re-executed kernels (progress events seen)" >&2
    exit 1
fi
# A process-ranked sweep through the daemon: the daemon supervises child
# rank processes; after shutdown none may survive as orphans.
PSWEEP_DIR="$DAEMON_DIR/psweep"
"$CLIENT" --socket "$DSOCK" sweep -- --sweep --sweep-dir "$PSWEEP_DIR" \
    --kernels Basic_DAXPY --size 100000 --reps 1 \
    --rank-isolation process --ranks 2 | grep -q '"isolation":"process"' \
    || { echo "verify: FAIL — daemon sweep did not report process isolation" >&2; exit 1; }
[[ -f "$PSWEEP_DIR/manifest.json" ]] \
    || { echo "verify: FAIL — daemon process-ranked sweep wrote no manifest" >&2; exit 1; }
"$CLIENT" --socket "$DSOCK" shutdown >/dev/null
wait "$DAEMON_PID"
[[ ! -S "$DSOCK" ]] || { echo "verify: FAIL — socket file left behind after shutdown" >&2; exit 1; }
if pgrep -f "$PSWEEP_DIR" >/dev/null 2>&1; then
    echo "verify: FAIL — daemon shutdown left orphan rank workers:" >&2
    pgrep -af "$PSWEEP_DIR" >&2
    exit 1
fi
echo "daemon: run streamed, store hit replayed, process-ranked sweep left no orphans, clean shutdown"

# Corpus-scale columnar engine smoke: 50k synthetic profiles through
# streaming ingest, parallel groupby+stats, and feature clustering, under a
# CI-scaled wall-clock budget (the binary exits 1 when over). Run at two
# rayon widths and compare digests: the parallel aggregation must be
# bitwise-deterministic across thread counts.
echo "== corpus: columnar thicket smoke (50k profiles, 1 vs 4 threads) =="
SMOKE1=$(RAYON_NUM_THREADS=1 target/release/corpus_smoke 50000)
echo "$SMOKE1" | head -1
SMOKE4=$(RAYON_NUM_THREADS=4 target/release/corpus_smoke 50000)
DIGEST1=$(echo "$SMOKE1" | grep "digest=")
DIGEST4=$(echo "$SMOKE4" | grep "digest=")
if [[ -z "$DIGEST1" || "$DIGEST1" != "$DIGEST4" ]]; then
    echo "verify: FAIL — corpus digests diverged across thread widths:" >&2
    echo "  1 thread:  $DIGEST1" >&2
    echo "  4 threads: $DIGEST4" >&2
    exit 1
fi
echo "corpus: budget met at both widths, $DIGEST1 reproduced bitwise"

# Daemon latency perf budget: median-of-3 round-trips against wall-clock
# thresholds (3x under CI=true) — catches service-layer stalls, not µs drift.
echo "== daemon: latency budget (cargo test --release -p rajaperfd --test latency_budget) =="
cargo test --release -p rajaperfd --test latency_budget

echo "verify: OK"
