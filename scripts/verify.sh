#!/usr/bin/env bash
# Full verification gate for RAJAPerf-rs: build, lint, and test everything.
#
#   scripts/verify.sh           # tier-1 + clippy + workspace tests
#   scripts/verify.sh --quick   # tier-1 only (build + root tests)
#
# Lint policy: `cargo clippy --all-targets -- -D warnings` must be clean
# across the whole workspace, vendored crates included.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

if [[ "${1:-}" == "--quick" ]]; then
    echo "verify: tier-1 OK (quick mode, clippy and workspace tests skipped)"
    exit 0
fi

echo "== lint: cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== full: cargo test --workspace --release =="
cargo test --workspace --release

echo "verify: OK"
