#!/usr/bin/env bash
# Snapshot the gpusim launch-overhead benchmarks into BENCH_gpusim.json.
#
#   scripts/bench.sh <label>          # e.g. scripts/bench.sh pre-pr3
#
# Runs crates/bench/benches/launch.rs in release mode with CRITERION_JSON
# pointed at a scratch file, then appends one snapshot object
#   {"label", "git", "threads", "utc", "entries": [{label, mean_ns, min_ns}...]}
# to the top-level array in BENCH_gpusim.json (created on first use). The
# file is committed so the perf trajectory across PRs is recorded.
set -euo pipefail
cd "$(dirname "$0")/.."

LABEL="${1:?usage: scripts/bench.sh <snapshot-label>}"
OUT="BENCH_gpusim.json"
SCRATCH="$(mktemp)"
trap 'rm -f "$SCRATCH"' EXIT

echo "== bench: cargo bench --bench launch (label: $LABEL) =="
CRITERION_JSON="$SCRATCH" cargo bench -p rajaperf-bench --bench launch

GIT_REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
THREADS="${RAYON_NUM_THREADS:-$(nproc)}"

python3 - "$OUT" "$LABEL" "$GIT_REV" "$THREADS" "$SCRATCH" <<'PY'
import json, sys, datetime
out, label, git_rev, threads, scratch = sys.argv[1:6]
entries = []
with open(scratch) as f:
    for line in f:
        line = line.strip()
        if line:
            entries.append(json.loads(line))
if not entries:
    sys.exit("bench.sh: no benchmark entries captured (CRITERION_JSON empty)")
try:
    with open(out) as f:
        snapshots = json.load(f)
except FileNotFoundError:
    snapshots = []
snapshots.append({
    "label": label,
    "git": git_rev,
    "threads": int(threads),
    "utc": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
    "entries": entries,
})
with open(out, "w") as f:
    json.dump(snapshots, f, indent=2)
    f.write("\n")
print(f"bench.sh: appended snapshot '{label}' ({len(entries)} entries) to {out}")
PY
