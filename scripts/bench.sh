#!/usr/bin/env bash
# Snapshot a Criterion bench into its committed BENCH_*.json trajectory.
#
#   scripts/bench.sh <label> [bench]   # bench: launch (default) | thicket | comm
#
#   scripts/bench.sh pre-pr3           # gpusim launch overhead -> BENCH_gpusim.json
#   scripts/bench.sh post-pr8 thicket  # thicket corpus engine  -> BENCH_thicket.json
#   scripts/bench.sh post-pr9 comm     # halo exchange + ranks  -> BENCH_comm.json
#
# Runs the selected bench in release mode with CRITERION_JSON pointed at a
# scratch file, then appends one snapshot object
#   {"label", "git", "threads", "utc", "entries": [{label, mean_ns, min_ns}...]}
# to the top-level array in the bench's BENCH_*.json (created on first use).
# The files are committed so the perf trajectory across PRs is recorded.
set -euo pipefail
cd "$(dirname "$0")/.."

LABEL="${1:?usage: scripts/bench.sh <snapshot-label> [launch|thicket|comm]}"
BENCH="${2:-launch}"
case "$BENCH" in
    launch)  OUT="BENCH_gpusim.json" ;;
    thicket) OUT="BENCH_thicket.json" ;;
    comm)    OUT="BENCH_comm.json" ;;
    *) echo "bench.sh: unknown bench '$BENCH' (expected launch, thicket, or comm)" >&2; exit 2 ;;
esac
SCRATCH="$(mktemp)"
trap 'rm -f "$SCRATCH"' EXIT

echo "== bench: cargo bench --bench $BENCH (label: $LABEL, out: $OUT) =="
CRITERION_JSON="$SCRATCH" cargo bench -p rajaperf-bench --bench "$BENCH"

GIT_REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
THREADS="${RAYON_NUM_THREADS:-$(nproc)}"

python3 - "$OUT" "$LABEL" "$GIT_REV" "$THREADS" "$SCRATCH" <<'PY'
import json, sys, datetime
out, label, git_rev, threads, scratch = sys.argv[1:6]
entries = []
with open(scratch) as f:
    for line in f:
        line = line.strip()
        if line:
            entries.append(json.loads(line))
if not entries:
    sys.exit("bench.sh: no benchmark entries captured (CRITERION_JSON empty)")
try:
    with open(out) as f:
        snapshots = json.load(f)
except FileNotFoundError:
    snapshots = []
snapshots.append({
    "label": label,
    "git": git_rev,
    "threads": int(threads),
    "utc": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
    "entries": entries,
})
with open(out, "w") as f:
    json.dump(snapshots, f, indent=2)
    f.write("\n")
print(f"bench.sh: appended snapshot '{label}' ({len(entries)} entries) to {out}")
PY
