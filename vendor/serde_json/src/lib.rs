//! Vendored stand-in for the `serde_json` crate: the JSON text layer over
//! the vendored `serde` value tree. `Value` and `Error` are re-exports of
//! `serde`'s, so profiles serialized here deserialize there and vice versa.

pub use serde::{to_value, Error, Value};

/// Deserialize a value from JSON text.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let v = serde::text::parse(text)?;
    T::deserialize(&v)
}

/// Serialize a value to compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(serde::text::write(&value.serialize()?, false))
}

/// Serialize a value to pretty JSON text (2-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(serde::text::write(&value.serialize()?, true))
}

/// Build a [`Value`] from a JSON-shaped literal: `json!(null)`,
/// `json!(expr)`, `json!([a, b])`, or `json!({"key": value, ...})`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($item) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        let mut __m = ::std::collections::BTreeMap::new();
        // Values serialize by reference (as in the real macro), so field
        // expressions like `sim.name` are not moved out of their struct.
        $( __m.insert(
            ::std::string::String::from($key),
            $crate::to_value(&$val).expect("json! value serializes"),
        ); )*
        $crate::Value::Object(__m)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn json_macro_forms() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!("RAJA_Seq"), Value::String("RAJA_Seq".into()));
        assert_eq!(json!(2.5), Value::Float(2.5));
        let obj = json!({"kernel": "Stream_TRIAD", "bytes": 24.0, "reps": 100usize});
        assert_eq!(obj["kernel"].as_str(), Some("Stream_TRIAD"));
        assert_eq!(obj["bytes"].as_f64(), Some(24.0));
        assert_eq!(obj["reps"].as_i64(), Some(100));
    }

    #[test]
    fn text_roundtrip_through_maps() {
        let mut globals: BTreeMap<String, Value> = BTreeMap::new();
        globals.insert("variant".into(), json!("RAJA_Seq"));
        globals.insert("ranks".into(), json!(112i64));
        let text = to_string_pretty(&globals).unwrap();
        let back: BTreeMap<String, Value> = from_str(&text).unwrap();
        assert_eq!(back, globals);
    }

    #[test]
    fn corrupt_text_is_an_error() {
        assert!(from_str::<Value>("{not json").is_err());
        let err = from_str::<BTreeMap<String, f64>>("[1]").unwrap_err();
        assert!(!err.to_string().is_empty());
    }
}
