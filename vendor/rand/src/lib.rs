//! Vendored stand-in for the `rand` crate.
//!
//! The workspace declares `rand` as a dev-dependency but only needs a small
//! deterministic generator; this stub provides an xorshift64* PRNG behind a
//! `rand`-flavoured API (`Rng::gen_range`, `thread_rng`, `SeedableRng`).

/// Minimal random-generation trait (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `usize` in `[range.start, range.end)`.
    fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + (self.next_u64() as usize) % (range.end - range.start)
    }
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// An xorshift64* generator: tiny, fast, deterministic.
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> SmallRng {
        SmallRng {
            state: seed.wrapping_mul(0x9E3779B97F4A7C15) | 1,
        }
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

/// A process-seeded generator (deterministic per process, unlike `rand`'s,
/// which is fine for the suite's test usage).
pub fn thread_rng() -> SmallRng {
    SmallRng::seed_from_u64(0xC0FFEE ^ std::process::id() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(5..17);
            assert!((5..17).contains(&v));
        }
        let f = r.gen_f64();
        assert!((0.0..1.0).contains(&f));
    }
}
