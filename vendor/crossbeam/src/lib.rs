//! Vendored stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module subset the workspace uses is provided,
//! implemented over `std::sync::mpsc` (whose `Sender` has been `Sync` since
//! Rust 1.72, which is all the simulated-MPI substrate needs).

/// Multi-producer channels (crossbeam-channel API subset).
pub mod channel {
    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// The sending half of an unbounded channel.
    pub type Sender<T> = std::sync::mpsc::Sender<T>;
    /// The receiving half of an unbounded channel.
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn send_and_receive_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(41).unwrap());
        tx.send(1).unwrap();
        let sum: i32 = (0..2).map(|_| rx.recv().unwrap()).sum();
        assert_eq!(sum, 42);
    }
}
