//! Vendored stand-in for the `serde_derive` proc-macro crate.
//!
//! Derives the vendored `serde::Serialize` / `serde::Deserialize` traits
//! (which map types to and from an owned JSON `serde::Value`) by walking the
//! item's token stream directly — no `syn`/`quote`, since this build
//! environment has no crates.io access. Supported item shapes are exactly the
//! ones this workspace derives on:
//!
//! - structs with named fields (no generics),
//! - newtype tuple structs,
//! - enums with only unit variants (serialized as the variant name),
//! - `#[serde(untagged)]` enums with only newtype variants (serialized as
//!   the payload; deserialized by trying variants in declaration order).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

enum Item {
    /// Named-field struct: (name, field names).
    Struct(String, Vec<String>),
    /// Newtype tuple struct: name.
    Newtype(String),
    /// Enum of unit variants: (name, variant names).
    UnitEnum(String, Vec<String>),
    /// `#[serde(untagged)]` enum of newtype variants: (name, variant names).
    UntaggedEnum(String, Vec<String>),
}

fn expand(input: TokenStream, dir: Direction) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => match dir {
            Direction::Serialize => gen_serialize(&item),
            Direction::Deserialize => gen_deserialize(&item),
        },
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

/// Parse the deriving item out of its token stream.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut untagged = false;
    let mut i = 0;

    // Outer attributes and visibility come before the `struct`/`enum` keyword.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if attr_is_serde_untagged(g.stream()) {
                        untagged = true;
                    }
                }
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
                break;
            }
            _ => i += 1, // `pub`, `pub(crate)`-style visibility groups, etc.
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde_derive: expected `struct` or `enum`".into()),
    };
    let name = match tokens.get(i + 1) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde_derive: expected item name".into()),
    };
    let body = match tokens.get(i + 2) {
        Some(TokenTree::Group(g)) => g,
        _ => return Err(format!(
            "serde_derive: `{name}` has an unsupported shape (generics and unit structs are not supported)"
        )),
    };

    if kind == "struct" {
        match body.delimiter() {
            Delimiter::Brace => Ok(Item::Struct(name, parse_named_fields(body.stream())?)),
            Delimiter::Parenthesis => {
                let arity = tuple_arity(body.stream());
                if arity == 1 {
                    Ok(Item::Newtype(name))
                } else {
                    Err(format!("serde_derive: tuple struct `{name}` must be a newtype"))
                }
            }
            _ => Err(format!("serde_derive: unsupported struct body for `{name}`")),
        }
    } else {
        let (variants, payloads) = parse_variants(body.stream())?;
        if payloads.iter().all(|p| !*p) {
            Ok(Item::UnitEnum(name, variants))
        } else if payloads.iter().all(|p| *p) && untagged {
            Ok(Item::UntaggedEnum(name, variants))
        } else {
            Err(format!(
                "serde_derive: enum `{name}` must be all-unit, or all-newtype with #[serde(untagged)]"
            ))
        }
    }
}

/// Does `#[...]` hold `serde(untagged)`?
fn attr_is_serde_untagged(attr: TokenStream) -> bool {
    let mut it = attr.into_iter();
    match (it.next(), it.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "untagged"))
        }
        _ => false,
    }
}

/// Field names of a `{ ... }` struct body, in declaration order.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip field attributes (doc comments arrive as `#[doc = "..."]`).
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        // Skip visibility.
        if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            Some(other) => {
                return Err(format!("serde_derive: expected field name, found `{other}`"))
            }
            None => break,
        }
        i += 1;
        if !matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            return Err("serde_derive: expected `:` after field name".into());
        }
        i += 1;
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Number of fields in a `( ... )` tuple-struct body.
fn tuple_arity(body: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    for t in body {
        any = true;
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => commas += 1,
            _ => {}
        }
    }
    if any {
        commas + 1
    } else {
        0
    }
}

/// Variant names of an enum body, with a per-variant "has payload" flag.
fn parse_variants(body: TokenStream) -> Result<(Vec<String>, Vec<bool>), String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut names = Vec::new();
    let mut payloads = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            Some(other) => {
                return Err(format!("serde_derive: expected variant name, found `{other}`"))
            }
            None => break,
        }
        i += 1;
        let has_payload = matches!(
            tokens.get(i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        );
        if has_payload {
            i += 1;
        }
        payloads.push(has_payload);
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok((names, payloads))
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct(name, fields) => {
            let inserts: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__m.insert(::std::string::String::from({f:?}), \
                         ::serde::Serialize::serialize(&self.{f})?);"
                    )
                })
                .collect();
            (name, format!(
                "let mut __m = ::std::collections::BTreeMap::new();\
                 {inserts}\
                 ::std::result::Result::Ok(::serde::Value::Object(__m))"
            ))
        }
        Item::Newtype(name) => (name, "::serde::Serialize::serialize(&self.0)".to_string()),
        Item::UnitEnum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::std::result::Result::Ok(\
                         ::serde::Value::String(::std::string::String::from({v:?}))),"
                    )
                })
                .collect();
            (name, format!("match self {{ {arms} }}"))
        }
        Item::UntaggedEnum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v}(__x) => ::serde::Serialize::serialize(__x),"))
                .collect();
            (name, format!("match self {{ {arms} }}"))
        }
    };
    format!(
        "#[automatically_derived]\
         impl ::serde::Serialize for {name} {{\
             fn serialize(&self) -> ::std::result::Result<::serde::Value, ::serde::Error> {{\
                 {body}\
             }}\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct(name, fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de_field(__o, {f:?})?,"))
                .collect();
            (name, format!(
                "let __o = __v.as_object().ok_or_else(|| \
                 ::serde::Error::msg(concat!(\"expected a JSON object for struct \", {name:?})))?;\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            ))
        }
        Item::Newtype(name) => (name, format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))"
        )),
        Item::UnitEnum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("::std::option::Option::Some({v:?}) => \
                                  ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            (name, format!(
                "match __v.as_str() {{ {arms} _ => ::std::result::Result::Err(\
                 ::serde::Error::msg(concat!(\"unknown variant of enum \", {name:?}))) }}"
            ))
        }
        Item::UntaggedEnum(name, variants) => {
            let tries: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "if let ::std::result::Result::Ok(__x) = \
                         ::serde::Deserialize::deserialize(__v) {{\
                             return ::std::result::Result::Ok({name}::{v}(__x));\
                         }}"
                    )
                })
                .collect();
            (name, format!(
                "{tries} ::std::result::Result::Err(::serde::Error::msg(concat!(\
                 \"data did not match any variant of untagged enum \", {name:?})))"
            ))
        }
    };
    format!(
        "#[automatically_derived]\
         impl ::serde::Deserialize for {name} {{\
             fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\
                 {body}\
             }}\
         }}"
    )
}
