//! Vendored stand-in for the `serde` crate.
//!
//! This build environment has no crates.io access, so the workspace vendors
//! the serde surface it actually uses. Instead of serde's zero-copy visitor
//! architecture, both traits go through an owned JSON value tree ([`Value`]):
//! `Serialize` maps a type *to* a `Value`, `Deserialize` maps it back *from*
//! one. The `serde_json` facade crate re-exports `Value`/`Error` from here
//! and adds the text layer (`from_str`, `to_string`, `json!`).
//!
//! The derive macros re-exported from `serde_derive` cover the shapes this
//! workspace uses: named structs, newtype structs, unit enums, and
//! `#[serde(untagged)]` newtype enums (tried in declaration order, so e.g.
//! `Int` before `Double` keeps `42` an integer and `3.25` a double).

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON value. Integers and floats are kept distinct so untagged
/// enums can round-trip `42` vs `3.25` faithfully.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number that parsed (or serialized) as an integer.
    Int(i64),
    /// JSON number with a fractional or exponent part.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, with deterministic (sorted) key order.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Borrow the string if this is `Value::String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The integer value, if this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric value (integral or floating), if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean, if this is `Value::Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow the array if this is `Value::Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow the map if this is `Value::Object`.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object member lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }

    /// Is this `Value::Null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Compact JSON text (`Display` mirrors `serde_json::Value`'s).
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&text::write(self, false))
    }
}

static NULL: Value = Value::Null;

/// Object indexing; missing keys and non-objects yield `Null` (as in
/// `serde_json`), so chained lookups never panic.
impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

macro_rules! value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Int(v as i64) }
        }
    )*};
}
value_from_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::from(v as f64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        if v.is_finite() {
            Value::Float(v)
        } else {
            Value::Null // JSON has no non-finite numbers; mirror serde_json's null
        }
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl From<&Value> for Value {
    fn from(v: &Value) -> Value {
        v.clone()
    }
}

/// The shared (de)serialization error: a message, optionally with the JSON
/// text position it arose at.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Build an error from a message.
    pub fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialization to a [`Value`] tree.
pub trait Serialize {
    /// Map `self` to a JSON value.
    fn serialize(&self) -> Result<Value, Error>;
}

/// Deserialization from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a JSON value.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

/// Required-field lookup used by derived struct `Deserialize` impls:
/// a missing key is an error, not a default.
pub fn de_field<T: Deserialize>(obj: &BTreeMap<String, Value>, key: &str) -> Result<T, Error> {
    match obj.get(key) {
        Some(v) => T::deserialize(v)
            .map_err(|e| Error::msg(format!("field `{key}`: {e}"))),
        None => Err(Error::msg(format!("missing field `{key}`"))),
    }
}

/// Serialize any value to a [`Value`] tree (`serde_json::to_value`).
pub fn to_value<T: Serialize>(v: T) -> Result<Value, Error> {
    v.serialize()
}

// ---------------------------------------------------------------------------
// Serialize / Deserialize impls for the std types the workspace uses.
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn serialize(&self) -> Result<Value, Error> {
        Ok(self.clone())
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Result<Value, Error> {
        Ok(Value::Bool(*self))
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<bool, Error> {
        v.as_bool().ok_or_else(|| Error::msg("expected a boolean"))
    }
}

macro_rules! impl_ints {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Result<Value, Error> { Ok(Value::Int(*self as i64)) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<$t, Error> {
                let i = v.as_i64().ok_or_else(|| Error::msg("expected an integer"))?;
                <$t>::try_from(i).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
impl_ints!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize(&self) -> Result<Value, Error> {
        Ok(Value::from(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<f64, Error> {
        v.as_f64().ok_or_else(|| Error::msg("expected a number"))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Result<Value, Error> {
        Ok(Value::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<f32, Error> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Result<Value, Error> {
        Ok(Value::String(self.clone()))
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<String, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg("expected a string"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Result<Value, Error> {
        Ok(Value::String(self.to_string()))
    }
}

/// Deserializing into `&'static str` leaks the parsed string. It exists so
/// deriving `Deserialize` on structs holding static-table strings (e.g. the
/// machine catalog) compiles; such tables are written, not read back, in
/// practice.
impl Deserialize for &'static str {
    fn deserialize(v: &Value) -> Result<&'static str, Error> {
        String::deserialize(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Result<Value, Error> {
        match self {
            Some(x) => x.serialize(),
            None => Ok(Value::Null),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Option<T>, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::deserialize(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Result<Value, Error> {
        self.iter()
            .map(Serialize::serialize)
            .collect::<Result<_, _>>()
            .map(Value::Array)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Vec<T>, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg("expected an array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Result<Value, Error> {
        self.iter()
            .map(Serialize::serialize)
            .collect::<Result<_, _>>()
            .map(Value::Array)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Result<Value, Error> {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize(&self) -> Result<Value, Error> {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(std::sync::Arc::new)
    }
}

macro_rules! impl_tuples {
    ($(($($n:tt $t:ident),+);)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Result<Value, Error> {
                Ok(Value::Array(vec![$(self.$n.serialize()?),+]))
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::msg("expected a tuple array"))?;
                const ARITY: usize = [$($n),+].len();
                if a.len() != ARITY {
                    return Err(Error::msg("tuple arity mismatch"));
                }
                Ok(($($t::deserialize(&a[$n])?,)+))
            }
        }
    )*};
}
impl_tuples! {
    (0 A);
    (0 A, 1 B);
    (0 A, 1 B, 2 C);
    (0 A, 1 B, 2 C, 3 D);
}

/// Maps serialize as JSON objects. Non-string keys (e.g. the thicket's
/// `(node, profile)` row keys) become their compact JSON text, and are parsed
/// back from it on deserialization.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Result<Value, Error> {
        let mut out = BTreeMap::new();
        for (k, v) in self {
            let key = match k.serialize()? {
                Value::String(s) => s,
                other => other.to_string(),
            };
            out.insert(key, v.serialize()?);
        }
        Ok(Value::Object(out))
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<BTreeMap<K, V>, Error> {
        let obj = v.as_object().ok_or_else(|| Error::msg("expected an object"))?;
        let mut out = BTreeMap::new();
        for (k, v) in obj {
            let key_value = Value::String(k.clone());
            let key = K::deserialize(&key_value)
                .or_else(|_| text::parse(k).and_then(|kv| K::deserialize(&kv)))
                .map_err(|_| Error::msg(format!("unparseable map key `{k}`")))?;
            out.insert(key, V::deserialize(v)?);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// JSON text layer (used by the serde_json facade).
// ---------------------------------------------------------------------------

/// JSON text parsing and printing shared with the `serde_json` facade.
pub mod text {
    use super::{Error, Value};
    use std::collections::BTreeMap;
    use std::fmt::Write as _;

    /// Parse a complete JSON document.
    pub fn parse(input: &str) -> Result<Value, Error> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn err(&self, msg: &str) -> Error {
            Error::msg(format!("{msg} at byte {}", self.pos))
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn eat(&mut self, tok: &str) -> Result<(), Error> {
            if self.bytes[self.pos..].starts_with(tok.as_bytes()) {
                self.pos += tok.len();
                Ok(())
            } else {
                Err(self.err(&format!("expected `{tok}`")))
            }
        }

        fn value(&mut self) -> Result<Value, Error> {
            match self.peek() {
                Some(b'n') => self.eat("null").map(|_| Value::Null),
                Some(b't') => self.eat("true").map(|_| Value::Bool(true)),
                Some(b'f') => self.eat("false").map(|_| Value::Bool(false)),
                Some(b'"') => self.string().map(Value::String),
                Some(b'[') => self.array(),
                Some(b'{') => self.object(),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                _ => Err(self.err("expected a JSON value")),
            }
        }

        fn array(&mut self) -> Result<Value, Error> {
            self.pos += 1; // [
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(self.err("expected `,` or `]` in array")),
                }
            }
        }

        fn object(&mut self) -> Result<Value, Error> {
            self.pos += 1; // {
            let mut map = BTreeMap::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                self.skip_ws();
                if self.peek() != Some(b'"') {
                    return Err(self.err("expected a string object key"));
                }
                let key = self.string()?;
                self.skip_ws();
                if self.peek() != Some(b':') {
                    return Err(self.err("expected `:` after object key"));
                }
                self.pos += 1;
                self.skip_ws();
                let val = self.value()?;
                map.insert(key, val);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return Err(self.err("expected `,` or `}` in object")),
                }
            }
        }

        fn string(&mut self) -> Result<String, Error> {
            self.pos += 1; // opening quote
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err(self.err("unterminated string")),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'b' => out.push('\u{0008}'),
                            b'f' => out.push('\u{000C}'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'u' => {
                                let cu = self.hex4()?;
                                // Combine UTF-16 surrogate pairs when present.
                                let ch = if (0xD800..0xDC00).contains(&cu) {
                                    if self.bytes[self.pos..].starts_with(b"\\u") {
                                        self.pos += 2;
                                        let lo = self.hex4()?;
                                        let c = 0x10000
                                            + ((cu - 0xD800) << 10)
                                            + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                        char::from_u32(c)
                                    } else {
                                        None
                                    }
                                } else {
                                    char::from_u32(cu)
                                };
                                out.push(ch.unwrap_or('\u{FFFD}'));
                            }
                            _ => return Err(self.err("unknown string escape")),
                        }
                    }
                    Some(b) if b < 0x80 => {
                        out.push(b as char);
                        self.pos += 1;
                    }
                    Some(b) => {
                        // Consume one UTF-8 scalar (the input is a &str, so
                        // byte boundaries are valid). Decode only this
                        // scalar's bytes — validating the whole remaining
                        // input per character makes parsing quadratic.
                        let len = match b {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let end = (self.pos + len).min(self.bytes.len());
                        let s = std::str::from_utf8(&self.bytes[self.pos..end])
                            .map_err(|_| self.err("invalid UTF-8 in string"))?;
                        let ch = s.chars().next().ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                        out.push(ch);
                        self.pos += ch.len_utf8();
                    }
                }
            }
        }

        fn hex4(&mut self) -> Result<u32, Error> {
            let hex = self
                .bytes
                .get(self.pos..self.pos + 4)
                .and_then(|b| std::str::from_utf8(b).ok())
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
            self.pos += 4;
            Ok(v)
        }

        fn number(&mut self) -> Result<Value, Error> {
            let start = self.pos;
            let mut is_float = false;
            while let Some(c) = self.peek() {
                match c {
                    b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                    b'.' | b'e' | b'E' => {
                        is_float = true;
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
            let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
            if !is_float {
                if let Ok(i) = s.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
            }
            s.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        }
    }

    /// Print a value as JSON text, compact or pretty (2-space indent).
    pub fn write(v: &Value, pretty: bool) -> String {
        let mut out = String::new();
        write_into(&mut out, v, pretty, 0);
        out
    }

    fn write_into(out: &mut String, v: &Value, pretty: bool, depth: usize) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            // `{:?}` keeps float-ness in the text ("7.0", "3.25", "1e300"),
            // so integers and doubles survive a round-trip distinct.
            Value::Float(f) => {
                let _ = write!(out, "{f:?}");
            }
            Value::String(s) => write_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, pretty, depth + 1);
                    write_into(out, item, pretty, depth + 1);
                }
                newline_indent(out, pretty, depth);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, val)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, pretty, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    write_into(out, val, pretty, depth + 1);
                }
                newline_indent(out, pretty, depth);
                out.push('}');
            }
        }
    }

    fn newline_indent(out: &mut String, pretty: bool, depth: usize) {
        if pretty {
            out.push('\n');
            for _ in 0..depth {
                out.push_str("  ");
            }
        }
    }

    fn write_string(out: &mut String, s: &str) {
        out.push('"');
        for ch in s.chars() {
            match ch {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                '\u{0008}' => out.push_str("\\b"),
                '\u{000C}' => out.push_str("\\f"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print_roundtrip() {
        let src = r#"{"a": [1, 2.5, true, null], "b": "x\ny é", "c": {"k": -3}}"#;
        let v = text::parse(src).unwrap();
        assert_eq!(v["a"], Value::Array(vec![
            Value::Int(1),
            Value::Float(2.5),
            Value::Bool(true),
            Value::Null
        ]));
        assert_eq!(v["b"].as_str(), Some("x\ny é"));
        assert_eq!(v["c"]["k"].as_i64(), Some(-3));
        let back = text::parse(&v.to_string()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn bad_json_is_an_error() {
        assert!(text::parse("{not json").is_err());
        assert!(text::parse("[1,]").is_err());
        assert!(text::parse("42 tail").is_err());
        assert!(text::parse("").is_err());
    }

    #[test]
    fn floats_keep_their_floatness() {
        let v = Value::Float(7.0);
        let t = text::write(&v, false);
        assert_eq!(t, "7.0");
        assert_eq!(text::parse(&t).unwrap(), v);
    }

    #[test]
    fn tuple_key_maps_roundtrip() {
        let mut m: std::collections::BTreeMap<(usize, usize), f64> =
            std::collections::BTreeMap::new();
        m.insert((0, 1), 2.5);
        m.insert((3, 4), -1.0);
        let v = m.serialize().unwrap();
        let back: std::collections::BTreeMap<(usize, usize), f64> =
            Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn missing_fields_are_errors() {
        let obj = text::parse(r#"{"x": 1}"#).unwrap();
        let o = obj.as_object().unwrap();
        assert!(de_field::<i64>(o, "x").is_ok());
        assert!(de_field::<i64>(o, "y").is_err());
    }
}
