//! Vendored stand-in for the `parking_lot` crate.
//!
//! This build environment has no crates.io access, so the workspace vendors
//! the small slice of the `parking_lot` API it uses: non-poisoning `Mutex`
//! and `RwLock` wrappers over their `std::sync` counterparts. A poisoned
//! std lock (a panic while held) is recovered rather than propagated,
//! matching parking_lot's no-poisoning semantics.

// Third-party stand-in: exempt from the workspace simsched-shim lint policy
// (clippy.toml); it wraps the raw std primitives by design.
#![allow(clippy::disallowed_types)]

use std::sync;

/// A mutual-exclusion lock whose `lock` never fails (parking_lot API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose acquisition never fails (parking_lot API).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock still usable after a panic");
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
