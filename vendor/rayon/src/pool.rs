//! The work-stealing execution engine behind the parallel iterators.
//!
//! One process-wide pool, built lazily on first use. Width comes from
//! `RAYON_NUM_THREADS` when set to a positive integer, otherwise from
//! [`std::thread::available_parallelism`]. A parallel call partitions its
//! index space into a *chunk grid* — a pure function of the length and the
//! pool width, independent of scheduling — seeds the shared injector with one
//! contiguous segment of chunks per thread, and then participates in the work
//! itself. Workers (and the caller) pop segments LIFO from their own deque,
//! steal FIFO from the injector and from each other, split off the back half
//! of any multi-chunk segment for thieves, and run one chunk at a time.
//!
//! Determinism: the iterator layer combines per-chunk partial results
//! strictly in chunk order, so for a fixed pool width every consumption is
//! reproducible no matter how chunks were scheduled. With a width of one the
//! engine never spawns a thread and every call degrades to an in-place
//! sequential loop on the caller — bitwise-identical to the old sequential
//! stand-in.
//!
//! Concurrency soundness: every lock, condvar, and atomic here goes through
//! the `simsched` shim — zero-cost passthroughs normally, scheduling points
//! under the bounded model checker. [`PoolCore`] exists so the checker can
//! build small-width pools inside a model body and exhaustively explore the
//! steal/inject, join-counter, poisoning, and shutdown protocols
//! (`crates/simsched/tests/`). Protocol notes proved out by those models:
//! the `done` flag is written under its mutex (so the submitter's
//! predicate-guarded wait cannot lose the final wakeup), and [`shutdown`]
//! sets its flag while holding the injector lock — the lock an idle worker
//! holds while deciding to sleep — so no worker can check-then-park around
//! shutdown. The worker idle wait's `notify_one` (from [`run_segment`]'s
//! splits) *can* be lost by design; that costs wakeup latency (bounded by
//! the 5ms timeout), never completion: the submitting caller can always
//! finish every chunk alone.
//!
//! [`shutdown`]: PoolCore::shutdown

use std::collections::VecDeque;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use simsched::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use simsched::sync::{Condvar, Mutex};

/// Target number of chunks per pool thread: enough slack for stealing to
/// balance uneven chunks without drowning small loops in scheduling overhead.
const CHUNKS_PER_THREAD: usize = 8;

thread_local! {
    /// Set on pool worker threads to the worker's stable index. A parallel
    /// call issued from a worker (a nested parallel call) runs inline and
    /// sequentially: the worker must not block waiting on siblings that may
    /// themselves be blocked.
    static WORKER_INDEX: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// One parallel call: the span function plus completion bookkeeping.
struct JobSet {
    /// The span function, as a raw pointer because its true lifetime is the
    /// duration of the submitting call. Validity: the submitter blocks in
    /// [`PoolCore::execute`] until `remaining` reaches zero, and every chunk
    /// finishes (or is skipped after a panic) before that final decrement.
    run_span: *const (dyn Fn(usize, usize) + Sync),
    /// Total item count.
    len: usize,
    /// Items per chunk (last chunk may be short).
    chunk: usize,
    /// Chunks not yet executed.
    remaining: AtomicUsize,
    /// Set once any chunk panics; later chunks of this job are skipped.
    poisoned: AtomicBool,
    /// First panic payload, re-thrown on the submitting thread.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Completion flag + condvar the submitter waits on. The flag write in
    /// [`JobSet::run_chunk`] happens under the mutex: the submitter's
    /// check-then-wait holds the lock across both, so the final notify can
    /// never fall between its predicate read and its park.
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: the raw `run_span` pointer is only dereferenced while the
// submitting call is blocked (see `JobSet::run_span`); everything else in the
// struct is already thread-safe.
unsafe impl Send for JobSet {}
unsafe impl Sync for JobSet {}

impl JobSet {
    /// Run chunk `c` (skipping the body if the job is already poisoned) and
    /// record completion.
    fn run_chunk(&self, c: usize) {
        if !self.poisoned.load(Ordering::Relaxed) {
            let lo = c * self.chunk;
            let hi = ((c + 1) * self.chunk).min(self.len);
            // SAFETY: the submitter is still blocked (remaining > 0), so the
            // span function is alive.
            let f = unsafe { &*self.run_span };
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(lo, hi)));
            if let Err(payload) = result {
                self.poisoned.store(true, Ordering::Relaxed);
                let mut slot = self.panic.lock().unwrap();
                slot.get_or_insert(payload);
            }
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            *self.done.lock().unwrap() = true;
            self.done_cv.notify_all();
        }
    }
}

/// A contiguous range of chunk indices `lo..hi` of one job.
struct Segment {
    set: Arc<JobSet>,
    lo: usize,
    hi: usize,
}

struct Shared {
    /// One deque per worker: the owner pushes and pops at the back (LIFO,
    /// for locality); thieves steal from the front (FIFO, largest segments
    /// first since splits push progressively smaller halves).
    queues: Vec<Mutex<VecDeque<Segment>>>,
    /// Submission queue, also used by non-worker callers for their splits.
    injector: Mutex<VecDeque<Segment>>,
    /// Idle workers sleep here (paired with the injector mutex); woken on
    /// every push, with a timeout as a missed-notification safety net.
    wakeup: Condvar,
    /// Set under the injector lock by [`PoolCore::shutdown`]; workers exit
    /// their loop once they observe it.
    shutdown: AtomicBool,
}

impl Shared {
    /// Find a segment to run. `me` is this thread's own queue index, if it
    /// is a pool worker.
    fn find_work(&self, me: Option<usize>) -> Option<Segment> {
        if let Some(w) = me {
            if let Some(seg) = self.queues[w].lock().unwrap().pop_back() {
                return Some(seg);
            }
        }
        if let Some(seg) = self.injector.lock().unwrap().pop_front() {
            return Some(seg);
        }
        let start = me.map_or(0, |w| w + 1);
        for k in 0..self.queues.len() {
            let q = (start + k) % self.queues.len();
            if Some(q) == me {
                continue;
            }
            if let Some(seg) = self.queues[q].lock().unwrap().pop_front() {
                return Some(seg);
            }
        }
        None
    }

    /// Run a segment: repeatedly give away the back half for thieves while
    /// more than one chunk remains, then run the front chunk.
    fn run_segment(&self, me: Option<usize>, seg: Segment) {
        let Segment { set, lo, mut hi } = seg;
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2 + (hi - lo) % 2;
            let half = Segment {
                set: Arc::clone(&set),
                lo: mid,
                hi,
            };
            match me {
                Some(w) => self.queues[w].lock().unwrap().push_back(half),
                None => self.injector.lock().unwrap().push_back(half),
            }
            self.wakeup.notify_one();
            hi = mid;
        }
        set.run_chunk(lo);
    }
}

/// A work-stealing pool instance: `width - 1` workers plus the participating
/// submitter. The process-wide pool is one of these behind a `OnceLock`;
/// model-checker tests build their own small ones to explore the protocols
/// exhaustively, which is why this type (unlike upstream rayon's registry)
/// is public.
pub struct PoolCore {
    threads: usize,
    shared: Arc<Shared>,
    workers: Vec<simsched::thread::JoinHandle<()>>,
}

impl PoolCore {
    /// Build a pool of the given width (total threads including the
    /// submitter; width 1 spawns nothing and runs everything inline).
    pub fn new(threads: usize) -> PoolCore {
        let threads = threads.max(1);
        // The submitting thread participates in every job, so spawn one
        // fewer worker than the configured width.
        let nworkers = threads - 1;
        let shared = Arc::new(Shared {
            queues: (0..nworkers)
                .map(|_| Mutex::labeled(VecDeque::new(), "rayon.worker_queue"))
                .collect(),
            injector: Mutex::labeled(VecDeque::new(), "rayon.injector"),
            wakeup: Condvar::labeled("rayon.wakeup"),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..nworkers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                simsched::thread::Builder::new()
                    .name(format!("rayon-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn pool worker")
            })
            .collect();
        PoolCore {
            threads,
            shared,
            workers,
        }
    }

    /// Pool width (workers plus the participating submitter).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// How a parallel call over `len` items will be partitioned: `(nchunks,
    /// chunk)` with chunk boundaries at multiples of `chunk`. The grid
    /// depends only on the length, the pool width, and whether the calling
    /// thread is a pool worker — never on scheduling — so the iterator layer
    /// can allocate one result slot per chunk and combine them in chunk
    /// order.
    pub fn plan(&self, len: usize) -> (usize, usize) {
        if self.threads <= 1 || len <= 1 || WORKER_INDEX.with(std::cell::Cell::get).is_some() {
            return (1, len.max(1));
        }
        let chunk = len.div_ceil(self.threads * CHUNKS_PER_THREAD).max(1);
        (len.div_ceil(chunk), chunk)
    }

    /// Execute `f` over every span of the grid `(nchunks, chunk)` previously
    /// returned by [`PoolCore::plan`] for the same `len`. Spans are
    /// `[lo, hi)` item ranges; each is run exactly once, possibly on
    /// different threads. Blocks until all spans completed; re-throws the
    /// first panic.
    pub fn execute(
        &self,
        len: usize,
        nchunks: usize,
        chunk: usize,
        f: &(dyn Fn(usize, usize) + Sync),
    ) {
        if nchunks <= 1 {
            f(0, len);
            return;
        }
        // Erase the span function's lifetime; see the field's validity
        // argument.
        type SpanFn<'a> = *const (dyn Fn(usize, usize) + Sync + 'a);
        // SAFETY: the 'static lifetime is a lie confined to this call: the
        // pointer is dropped with the JobSet, and this function does not
        // return until every chunk has run (the done/done_cv wait below), so
        // the pointee outlives every dereference.
        let run_span = unsafe { std::mem::transmute::<SpanFn<'_>, SpanFn<'static>>(f) };
        let set = Arc::new(JobSet {
            run_span,
            len,
            chunk,
            remaining: AtomicUsize::new(nchunks),
            poisoned: AtomicBool::new(false),
            panic: Mutex::labeled(None, "rayon.jobset.panic"),
            done: Mutex::labeled(false, "rayon.jobset.done"),
            done_cv: Condvar::labeled("rayon.jobset.done_cv"),
        });
        {
            // Seed one contiguous segment per thread so every worker has a
            // starting assignment before stealing begins.
            let parts = self.threads.min(nchunks);
            let per = nchunks / parts;
            let extra = nchunks % parts;
            let mut start = 0;
            let mut inj = self.shared.injector.lock().unwrap();
            for i in 0..parts {
                let span = per + usize::from(i < extra);
                inj.push_back(Segment {
                    set: Arc::clone(&set),
                    lo: start,
                    hi: start + span,
                });
                start += span;
            }
        }
        self.shared.wakeup.notify_all();
        // Participate until this job completes (running other jobs' segments
        // too, if stealing happens to surface them — they also make
        // progress).
        loop {
            if let Some(seg) = self.shared.find_work(None) {
                self.shared.run_segment(None, seg);
                continue;
            }
            let guard = set.done.lock().unwrap();
            if *guard {
                break;
            }
            let (guard, _) = set
                .done_cv
                .wait_timeout(guard, Duration::from_millis(1))
                .unwrap();
            if *guard {
                break;
            }
        }
        let payload = set.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }

    /// Stop and join every worker. The flag is set while holding the
    /// injector lock — the lock an idle worker holds while deciding to
    /// sleep — so a worker cannot observe `shutdown == false`, then park
    /// after the notify: either it sees the flag, or it is already parked
    /// when `notify_all` fires. (The model checker explores this protocol in
    /// strict mode, where a lost shutdown wakeup would be a reported
    /// deadlock.)
    pub fn shutdown(&mut self) {
        {
            let _inj = self.shared.injector.lock().unwrap();
            self.shared.shutdown.store(true, Ordering::Release);
        }
        self.shared.wakeup.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for PoolCore {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // Signal shutdown but don't join: under the model checker an
            // abandoned run unwinds with scheduling points disabled, and a
            // blocking join here could wait on workers the (now inert)
            // scheduler will never run. The flag plus the idle-wait timeout
            // lets them exit on their own.
            {
                let _inj = self.shared.injector.lock().unwrap();
                self.shared.shutdown.store(true, Ordering::Release);
            }
            self.shared.wakeup.notify_all();
        } else {
            self.shutdown();
        }
    }
}

fn width_from_env() -> usize {
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

fn pool() -> &'static PoolCore {
    static POOL: OnceLock<PoolCore> = OnceLock::new();
    POOL.get_or_init(|| PoolCore::new(width_from_env()))
}

fn worker_loop(shared: &Shared, w: usize) {
    WORKER_INDEX.with(|f| f.set(Some(w)));
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        if let Some(seg) = shared.find_work(Some(w)) {
            shared.run_segment(Some(w), seg);
        } else {
            let guard = shared.injector.lock().unwrap();
            if guard.is_empty() && !shared.shutdown.load(Ordering::Relaxed) {
                // Sleep until a push notifies us; the timeout re-scans the
                // per-worker queues in case a notification raced past (a
                // split's notify_one is allowed to be lost — see module
                // docs).
                let _ = shared
                    .wakeup
                    .wait_timeout(guard, Duration::from_millis(5))
                    .unwrap();
            }
        }
    }
    WORKER_INDEX.with(|f| f.set(None));
}

/// Number of threads the pool uses (workers plus the participating caller).
pub fn current_num_threads() -> usize {
    pool().threads
}

/// Stable index of the pool worker running the calling thread, or `None`
/// off-pool (including the submitting caller, which participates in every
/// job but is not a worker). Indices are dense in
/// `0..current_num_threads() - 1` and fixed for the worker's lifetime, so
/// instrumentation layers can use them as per-worker lane ids.
pub fn current_worker_index() -> Option<usize> {
    WORKER_INDEX.with(std::cell::Cell::get)
}

/// Partition a parallel call over the process-wide pool; see
/// [`PoolCore::plan`].
pub(crate) fn plan(len: usize) -> (usize, usize) {
    pool().plan(len)
}

/// Execute a span function over the process-wide pool; see
/// [`PoolCore::execute`].
pub(crate) fn execute(len: usize, nchunks: usize, chunk: usize, f: &(dyn Fn(usize, usize) + Sync)) {
    pool().execute(len, nchunks, chunk, f)
}
