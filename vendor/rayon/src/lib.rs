//! Vendored stand-in for the `rayon` crate.
//!
//! This build environment has no crates.io access and a single CPU core, so
//! the workspace vendors the slice of rayon's data-parallel API it uses with
//! a *sequential* execution engine: `par_iter`-family calls deliver the same
//! items with the same semantics (including rayon's `fold(init, ..)` /
//! `reduce(init, ..)` partial-combining shape) on the calling thread. On a
//! one-core host this is also what rayon's work-stealing pool would degrade
//! to; the portability-layer policies keep their structure and their results
//! stay bitwise-deterministic.

use std::ops::{Range, RangeInclusive};

/// The adapter wrapping a sequential iterator behind rayon's parallel
/// iterator surface.
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// Consume the iterator, invoking `f` per item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f);
    }

    /// Map items through `f`.
    pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// Sum the items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Pair each item with its index.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// Zip with another parallel iterator.
    pub fn zip<J>(self, other: ParIter<J>) -> ParIter<std::iter::Zip<I, J::IntoIter>>
    where
        J: IntoIterator,
    {
        ParIter(self.0.zip(other.0))
    }

    /// Keep items satisfying `f`.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter(self.0.filter(f))
    }

    /// Rayon-shaped fold: starts partial accumulators with `init()` and
    /// folds items into them, yielding an iterator of partials (exactly one
    /// here, since execution is sequential).
    pub fn fold<T, ID, F>(self, init: ID, fold: F) -> ParIter<std::iter::Once<T>>
    where
        ID: Fn() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        ParIter(std::iter::once(self.0.fold(init(), fold)))
    }

    /// Rayon-shaped reduce: combine items pairwise starting from `init()`.
    pub fn reduce<ID, F>(self, init: ID, combine: F) -> I::Item
    where
        ID: Fn() -> I::Item,
        F: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(init(), combine)
    }

    /// Collect into a container.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Minimum item.
    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.min()
    }

    /// Maximum item.
    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    /// Item count.
    pub fn count(self) -> usize {
        self.0.count()
    }
}

impl<I: Iterator> IntoIterator for ParIter<I> {
    type Item = I::Item;
    type IntoIter = I;
    fn into_iter(self) -> I {
        self.0
    }
}

/// Conversion into a parallel iterator (`rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// The underlying sequential iterator.
    type SeqIter: Iterator<Item = Self::Item>;
    /// Item type.
    type Item;
    /// Convert self into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::SeqIter>;
}

impl<T> IntoParallelIterator for Range<T>
where
    Range<T>: Iterator<Item = T>,
{
    type SeqIter = Range<T>;
    type Item = T;
    fn into_par_iter(self) -> ParIter<Range<T>> {
        ParIter(self)
    }
}

impl<T> IntoParallelIterator for RangeInclusive<T>
where
    RangeInclusive<T>: Iterator<Item = T>,
{
    type SeqIter = RangeInclusive<T>;
    type Item = T;
    fn into_par_iter(self) -> ParIter<RangeInclusive<T>> {
        ParIter(self)
    }
}

impl<T> IntoParallelIterator for Vec<T> {
    type SeqIter = std::vec::IntoIter<T>;
    type Item = T;
    fn into_par_iter(self) -> ParIter<std::vec::IntoIter<T>> {
        ParIter(self.into_iter())
    }
}

/// Shared-slice parallel views (`rayon::slice::ParallelSlice`).
pub trait ParallelSlice<T> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
    /// Parallel iterator over non-overlapping chunks.
    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }

    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter(self.chunks(size))
    }
}

/// Mutable-slice parallel views (`rayon::slice::ParallelSliceMut`).
pub trait ParallelSliceMut<T> {
    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
    /// Parallel iterator over non-overlapping mutable chunks.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
    /// Stable sort by comparator.
    fn par_sort_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, cmp: F);
    /// Unstable sort by comparator.
    fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, cmp: F);
    /// Unstable natural-order sort.
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
        ParIter(self.iter_mut())
    }

    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(size))
    }

    fn par_sort_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, cmp: F) {
        self.sort_by(cmp);
    }

    fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, cmp: F) {
        self.sort_unstable_by(cmp);
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }
}

/// Number of worker threads the pool would use (one: sequential engine).
pub fn current_num_threads() -> usize {
    1
}

/// The customary glob import.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_for_each_and_sum() {
        let mut hits = vec![0u32; 10];
        (0..10usize).into_par_iter().for_each(|i| hits[i] += 1);
        assert!(hits.iter().all(|&h| h == 1));
        let s: usize = (1..=4usize).into_par_iter().map(|i| i * i).sum();
        assert_eq!(s, 30);
    }

    #[test]
    fn fold_reduce_matches_rayon_shape() {
        let total = (0..100usize)
            .into_par_iter()
            .fold(|| 0usize, |acc, i| acc + i)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 4950);
    }

    #[test]
    fn map_reduce_with_identity() {
        let (val, loc) = (0..5usize)
            .into_par_iter()
            .map(|i| ((10 - i) as f64, i))
            .reduce(|| (f64::INFINITY, usize::MAX), |a, b| if b.0 < a.0 { b } else { a });
        assert_eq!((val, loc), (6.0, 4));
    }

    #[test]
    fn slice_adapters() {
        let a = [1.0f64, 2.0, 3.0];
        let s: f64 = a.par_iter().sum();
        assert_eq!(s, 6.0);
        let mut b = [3, 1, 2];
        b.par_sort_unstable();
        assert_eq!(b, [1, 2, 3]);
        let mut c = [0.0f64; 6];
        let off = [10.0, 20.0, 30.0];
        c.par_chunks_mut(2)
            .zip(off.par_iter())
            .enumerate()
            .for_each(|(i, (chunk, &o))| chunk.iter_mut().for_each(|v| *v = o + i as f64));
        assert_eq!(c, [10.0, 10.0, 21.0, 21.0, 32.0, 32.0]);
    }
}
