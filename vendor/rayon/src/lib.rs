//! Vendored stand-in for the `rayon` crate, backed by a real work-stealing
//! thread pool.
//!
//! This build environment has no crates.io access, so the workspace vendors
//! the slice of rayon's data-parallel API it uses. Unlike the original
//! sequential stand-in, execution now goes through a process-wide
//! work-stealing pool (see [`pool`]): parallel calls split their index space
//! into a deterministic chunk grid, pool threads steal and run chunks, and
//! per-chunk partial results are combined strictly in chunk order.
//!
//! Guarantees the benchmark suite relies on:
//!
//! * **Sizing** — `RAYON_NUM_THREADS` (a positive integer) overrides
//!   [`std::thread::available_parallelism`]; read once at first use.
//! * **Determinism** — for a fixed pool width, every consumption is
//!   reproducible: the chunk grid and the combine order are pure functions
//!   of the length and the width, never of scheduling. (This is *stronger*
//!   than real rayon, which combines in scheduling order.)
//! * **Single-thread degradation** — with a width of one (this container's
//!   default), no threads are spawned and every call runs as an in-place
//!   sequential loop on the caller, bitwise-identical to the old sequential
//!   engine.
//! * **Rayon shapes** — `fold(init, ..)`/`reduce(init, ..)` keep rayon's
//!   partial-accumulator semantics: each chunk starts a fresh `init()`.

#![warn(unsafe_op_in_unsafe_fn)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

mod pool;

pub use pool::{current_num_threads, current_worker_index, PoolCore};

// --------------------------------------------------------------- producers

/// A random-access source of items for the parallel engine.
///
/// The engine partitions `0..len()` into contiguous spans and materializes
/// each span's items on whichever pool thread runs it, so producers are
/// shared across threads by reference.
pub trait Producer: Send + Sync {
    /// The produced item type.
    type Item: Send;

    /// Number of items.
    fn len(&self) -> usize;

    /// True when there are no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produce the item at position `i`.
    ///
    /// # Safety
    /// `i < self.len()`, and each position may be produced at most once per
    /// producer: mutable producers hand out `&mut` borrows and owning
    /// producers move items out.
    unsafe fn produce(&self, i: usize) -> Self::Item;
}

/// Sequential iterator over one span of a producer, driven on one thread.
struct SpanIter<'a, P: Producer> {
    p: &'a P,
    cur: usize,
    end: usize,
}

impl<P: Producer> Iterator for SpanIter<'_, P> {
    type Item = P::Item;

    #[inline]
    fn next(&mut self) -> Option<P::Item> {
        if self.cur < self.end {
            let i = self.cur;
            self.cur += 1;
            // SAFETY: `i < end <= len`, and the engine assigns each span to
            // exactly one `SpanIter`, which visits each position once.
            Some(unsafe { self.p.produce(i) })
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.end - self.cur;
        (n, Some(n))
    }
}

/// A write-once result slot for one chunk.
struct Slot<T>(std::cell::UnsafeCell<Option<T>>);

// SAFETY: each slot is written by exactly one thread (the one running its
// chunk) and read only after the job's completion synchronizes with the
// reader (pool `remaining` counter + completion mutex).
unsafe impl<T: Send> Sync for Slot<T> {}

impl<T> Slot<T> {
    fn new() -> Slot<T> {
        Slot(std::cell::UnsafeCell::new(None))
    }

    /// # Safety
    /// At most one writer, and no concurrent reader.
    unsafe fn put(&self, v: T) {
        unsafe { *self.0.get() = Some(v) };
    }

    fn into_inner(self) -> Option<T> {
        self.0.into_inner()
    }
}

/// Run `f` once per span, discarding results.
fn run_spans<P, F>(p: &P, f: F)
where
    P: Producer,
    F: Fn(SpanIter<'_, P>) + Sync,
{
    let (nchunks, chunk) = pool::plan(p.len());
    pool::execute(p.len(), nchunks, chunk, &|lo, hi| {
        f(SpanIter { p, cur: lo, end: hi });
    });
}

/// Run `f` once per span and return the per-span results in chunk order.
fn map_spans<P, T, F>(p: &P, f: F) -> Vec<T>
where
    P: Producer,
    T: Send,
    F: Fn(SpanIter<'_, P>) -> T + Sync,
{
    let (nchunks, chunk) = pool::plan(p.len());
    let slots: Vec<Slot<T>> = (0..nchunks).map(|_| Slot::new()).collect();
    pool::execute(p.len(), nchunks, chunk, &|lo, hi| {
        let v = f(SpanIter { p, cur: lo, end: hi });
        // SAFETY: spans start at chunk boundaries and each chunk runs once,
        // so `lo / chunk` indexes a distinct slot per call.
        unsafe { slots[lo / chunk].put(v) };
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every chunk executed"))
        .collect()
}

/// Run `f(i)` for every `i` in `0..n` across the pool, driving each chunk
/// with a plain `lo..hi` counted loop instead of a [`SpanIter`].
///
/// Functionally identical to `(0..n).into_par_iter().for_each(f)` — same
/// chunk grid, same per-chunk execution — but the per-item step is a bare
/// increment-and-call, with no `Option` construction or iterator state for
/// the optimizer to see through. Intended for hot index loops where the
/// per-item body is only a few instructions.
pub fn for_each_index<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let (nchunks, chunk) = pool::plan(n);
    if nchunks <= 1 {
        // Keep the single-chunk loop fully monomorphized: routing it through
        // `pool::execute`'s `&dyn Fn` span interface costs real throughput on
        // few-instruction bodies. Tile the index space so the hot inner loop
        // has a fixed trip count, which the optimizer unrolls/vectorizes
        // more readily than one flat `0..n` loop.
        const TILE: usize = 256;
        let mut lo = 0;
        while lo + TILE <= n {
            for i in lo..lo + TILE {
                f(i);
            }
            lo += TILE;
        }
        for i in lo..n {
            f(i);
        }
        return;
    }
    pool::execute(n, nchunks, chunk, &|lo, hi| {
        for i in lo..hi {
            f(i);
        }
    });
}

// ---------------------------------------------------------------- adapters

/// The parallel iterator over a [`Producer`].
pub struct ParIter<P>(P);

/// Mapping adapter (`ParIter::map`).
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, B, F> Producer for Map<P, F>
where
    P: Producer,
    B: Send,
    F: Fn(P::Item) -> B + Send + Sync,
{
    type Item = B;

    fn len(&self) -> usize {
        self.base.len()
    }

    // SAFETY: unsafe per the `Producer` contract — the caller guarantees
    // `i < self.len()` and produces each position at most once.
    unsafe fn produce(&self, i: usize) -> B {
        // SAFETY: same contract as ours.
        (self.f)(unsafe { self.base.produce(i) })
    }
}

/// Index-pairing adapter (`ParIter::enumerate`). Indices are positional, as
/// in rayon's `IndexedParallelIterator::enumerate`.
pub struct Enumerate<P> {
    base: P,
}

impl<P: Producer> Producer for Enumerate<P> {
    type Item = (usize, P::Item);

    fn len(&self) -> usize {
        self.base.len()
    }

    // SAFETY: unsafe per the `Producer` contract — the caller guarantees
    // `i < self.len()` and produces each position at most once.
    unsafe fn produce(&self, i: usize) -> (usize, P::Item) {
        // SAFETY: same contract as ours.
        (i, unsafe { self.base.produce(i) })
    }
}

/// Random-access pairing adapter (`ParIter::zip`), truncating to the shorter
/// side. Positions past the truncated length are never produced, so an
/// owning producer's surplus items are leaked rather than dropped.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: Producer, B: Producer> Producer for Zip<A, B> {
    type Item = (A::Item, B::Item);

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    // SAFETY: unsafe per the `Producer` contract — the caller guarantees
    // `i < self.len()` and produces each position at most once.
    unsafe fn produce(&self, i: usize) -> (A::Item, B::Item) {
        // SAFETY: same contract as ours, and `i < min(a.len, b.len)`.
        (unsafe { self.a.produce(i) }, unsafe { self.b.produce(i) })
    }
}

impl<P: Producer> ParIter<P> {
    /// Consume the iterator, invoking `f` per item.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Send + Sync,
    {
        let p = self.0;
        run_spans(&p, |span| span.for_each(&f));
    }

    /// Map items through `f`.
    pub fn map<B, F>(self, f: F) -> ParIter<Map<P, F>>
    where
        B: Send,
        F: Fn(P::Item) -> B + Send + Sync,
    {
        ParIter(Map { base: self.0, f })
    }

    /// Sum the items (per-chunk partial sums, combined in chunk order).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<P::Item> + std::iter::Sum<S> + Send,
    {
        let p = self.0;
        let mut parts = map_spans(&p, |span| span.sum::<S>());
        if parts.len() == 1 {
            // Single chunk: return the partial itself so the result is
            // bitwise-identical to a sequential sum.
            parts.pop().unwrap()
        } else {
            parts.into_iter().sum()
        }
    }

    /// Pair each item with its index.
    pub fn enumerate(self) -> ParIter<Enumerate<P>> {
        ParIter(Enumerate { base: self.0 })
    }

    /// Zip with another parallel iterator (truncates to the shorter side).
    pub fn zip<Q: Producer>(self, other: ParIter<Q>) -> ParIter<Zip<P, Q>> {
        ParIter(Zip {
            a: self.0,
            b: other.0,
        })
    }

    /// Keep items satisfying `pred`.
    pub fn filter<F>(self, pred: F) -> ParFilter<P, F>
    where
        F: Fn(&P::Item) -> bool + Send + Sync,
    {
        ParFilter { base: self.0, pred }
    }

    /// Rayon-shaped fold: each chunk starts a fresh accumulator from
    /// `init()` and folds its items in, yielding the partials (in chunk
    /// order) as a new parallel iterator.
    pub fn fold<T, ID, F>(self, init: ID, fold: F) -> ParIter<VecProducer<T>>
    where
        T: Send,
        ID: Fn() -> T + Send + Sync,
        F: Fn(T, P::Item) -> T + Send + Sync,
    {
        let p = self.0;
        let parts = map_spans(&p, |span| span.fold(init(), &fold));
        ParIter(VecProducer::new(parts))
    }

    /// Rayon-shaped reduce: combine items pairwise starting from `init()`.
    /// Per-chunk partials are combined left-to-right in chunk order; with a
    /// single chunk this is exactly a sequential `fold(init(), combine)`.
    pub fn reduce<ID, F>(self, init: ID, combine: F) -> P::Item
    where
        ID: Fn() -> P::Item + Send + Sync,
        F: Fn(P::Item, P::Item) -> P::Item + Send + Sync,
    {
        let p = self.0;
        let parts = map_spans(&p, |span| span.fold(init(), &combine));
        let mut it = parts.into_iter();
        let first = it.next().unwrap_or_else(&init);
        it.fold(first, combine)
    }

    /// Collect into a container (items arrive in index order).
    pub fn collect<C: FromIterator<P::Item>>(self) -> C {
        let p = self.0;
        map_spans(&p, |span| span.collect::<Vec<_>>())
            .into_iter()
            .flatten()
            .collect()
    }

    /// Minimum item; the first of equals, as for [`Iterator::min`].
    pub fn min(self) -> Option<P::Item>
    where
        P::Item: Ord,
    {
        let p = self.0;
        map_spans(&p, |span| span.min())
            .into_iter()
            .flatten()
            .reduce(std::cmp::min)
    }

    /// Maximum item; the last of equals, as for [`Iterator::max`].
    pub fn max(self) -> Option<P::Item>
    where
        P::Item: Ord,
    {
        let p = self.0;
        map_spans(&p, |span| span.max())
            .into_iter()
            .flatten()
            .reduce(std::cmp::max)
    }

    /// Item count (items are still produced, so mapped side effects run).
    pub fn count(self) -> usize {
        let p = self.0;
        map_spans(&p, |span| span.count()).into_iter().sum()
    }
}

/// A filtered parallel iterator (`ParIter::filter`). Filtering changes the
/// cardinality, so this is a separate driver over the base producer rather
/// than a [`Producer`] itself; it supports the terminal consumptions.
pub struct ParFilter<P, F> {
    base: P,
    pred: F,
}

impl<P, F> ParFilter<P, F>
where
    P: Producer,
    F: Fn(&P::Item) -> bool + Send + Sync,
{
    /// Consume the surviving items with `f`.
    pub fn for_each<G>(self, f: G)
    where
        G: Fn(P::Item) + Send + Sync,
    {
        let (p, pred) = (self.base, self.pred);
        run_spans(&p, |span| span.filter(|it| pred(it)).for_each(&f));
    }

    /// Count the surviving items.
    pub fn count(self) -> usize {
        let (p, pred) = (self.base, self.pred);
        map_spans(&p, |span| span.filter(|it| pred(it)).count())
            .into_iter()
            .sum()
    }

    /// Sum the surviving items.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<P::Item> + std::iter::Sum<S> + Send,
    {
        let (p, pred) = (self.base, self.pred);
        let mut parts = map_spans(&p, |span| span.filter(|it| pred(it)).sum::<S>());
        if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            parts.into_iter().sum()
        }
    }

    /// Collect the surviving items in index order.
    pub fn collect<C: FromIterator<P::Item>>(self) -> C {
        let (p, pred) = (self.base, self.pred);
        map_spans(&p, |span| span.filter(|it| pred(it)).collect::<Vec<_>>())
            .into_iter()
            .flatten()
            .collect()
    }
}

// ------------------------------------------------------------- into_par_iter

/// Conversion into a parallel iterator (`rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// The producer backing the parallel iterator.
    type Producer: Producer;

    /// Convert self into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Producer>;
}

/// Producer for `usize` ranges.
pub struct RangeProducer {
    start: usize,
    len: usize,
}

impl Producer for RangeProducer {
    type Item = usize;

    fn len(&self) -> usize {
        self.len
    }

    // SAFETY: unsafe per the `Producer` contract — the caller guarantees
    // `i < self.len()` and produces each position at most once.
    unsafe fn produce(&self, i: usize) -> usize {
        self.start + i
    }
}

impl IntoParallelIterator for Range<usize> {
    type Producer = RangeProducer;

    fn into_par_iter(self) -> ParIter<RangeProducer> {
        ParIter(RangeProducer {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        })
    }
}

impl IntoParallelIterator for RangeInclusive<usize> {
    type Producer = RangeProducer;

    fn into_par_iter(self) -> ParIter<RangeProducer> {
        let (start, end) = (*self.start(), *self.end());
        let len = if start <= end {
            (end - start).saturating_add(1)
        } else {
            0
        };
        ParIter(RangeProducer { start, len })
    }
}

/// Owning producer over a `Vec`'s elements (also the carrier of `fold`
/// partials).
pub struct VecProducer<T: Send> {
    /// Storage with its length forced to zero: elements are moved out via
    /// `ptr::read` as they are produced, so dropping the producer must not
    /// drop them again. Elements never produced (consumption panicked, or a
    /// zip truncated them) leak — safe, just not dropped.
    buf: Vec<T>,
    len: usize,
}

// SAFETY: `produce` only moves elements out of distinct indices; the shared
// reference is never used to alias the same element from two threads.
unsafe impl<T: Send> Sync for VecProducer<T> {}

impl<T: Send> VecProducer<T> {
    fn new(mut v: Vec<T>) -> VecProducer<T> {
        let len = v.len();
        // SAFETY: shrinking only; the elements stay initialized in the
        // buffer and are moved out exactly once by `produce`.
        unsafe { v.set_len(0) };
        VecProducer { buf: v, len }
    }
}

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.len
    }

    // SAFETY: unsafe per the `Producer` contract — the caller guarantees
    // `i < self.len()` and produces each position at most once.
    unsafe fn produce(&self, i: usize) -> T {
        // SAFETY: `i < self.len` elements are initialized, and the engine
        // produces each index at most once, so this read does not duplicate.
        unsafe { std::ptr::read(self.buf.as_ptr().add(i)) }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Producer = VecProducer<T>;

    fn into_par_iter(self) -> ParIter<VecProducer<T>> {
        ParIter(VecProducer::new(self))
    }
}

// ------------------------------------------------------------------- slices

/// Producer over `&T` items of a shared slice.
pub struct SliceProducer<'a, T> {
    s: &'a [T],
}

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.s.len()
    }

    // SAFETY: unsafe per the `Producer` contract — the caller guarantees
    // `i < self.len()` and produces each position at most once.
    unsafe fn produce(&self, i: usize) -> &'a T {
        // SAFETY: `i < len`.
        unsafe { self.s.get_unchecked(i) }
    }
}

/// Producer over non-overlapping sub-slices of a shared slice.
pub struct ChunksProducer<'a, T> {
    s: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
    type Item = &'a [T];

    fn len(&self) -> usize {
        self.s.len().div_ceil(self.size)
    }

    // SAFETY: unsafe per the `Producer` contract — the caller guarantees
    // `i < self.len()` and produces each position at most once.
    unsafe fn produce(&self, i: usize) -> &'a [T] {
        let lo = i * self.size;
        let hi = (lo + self.size).min(self.s.len());
        &self.s[lo..hi]
    }
}

/// Producer over `&mut T` items of an exclusive slice. Positions are
/// disjoint, so handing out `&mut` borrows from a shared producer reference
/// is sound under the produce-once contract.
pub struct IterMutProducer<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: models the exclusive borrow it was created from; `produce` hands
// out non-aliasing `&mut` borrows of distinct elements.
unsafe impl<T: Send> Send for IterMutProducer<'_, T> {}
unsafe impl<T: Send> Sync for IterMutProducer<'_, T> {}

impl<'a, T: Send> Producer for IterMutProducer<'a, T> {
    type Item = &'a mut T;

    fn len(&self) -> usize {
        self.len
    }

    // SAFETY: unsafe per the `Producer` contract — the caller guarantees
    // `i < self.len()` and produces each position at most once.
    unsafe fn produce(&self, i: usize) -> &'a mut T {
        // SAFETY: `i < len`, and each index is produced at most once, so the
        // returned borrows never alias.
        unsafe { &mut *self.ptr.add(i) }
    }
}

/// Producer over non-overlapping mutable sub-slices of an exclusive slice.
pub struct ChunksMutProducer<'a, T> {
    ptr: *mut T,
    len: usize,
    size: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: as for `IterMutProducer`; chunks are disjoint by construction.
unsafe impl<T: Send> Send for ChunksMutProducer<'_, T> {}
unsafe impl<T: Send> Sync for ChunksMutProducer<'_, T> {}

impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];

    fn len(&self) -> usize {
        self.len.div_ceil(self.size)
    }

    // SAFETY: unsafe per the `Producer` contract — the caller guarantees
    // `i < self.len()` and produces each position at most once.
    unsafe fn produce(&self, i: usize) -> &'a mut [T] {
        let lo = i * self.size;
        let hi = (lo + self.size).min(self.len);
        // SAFETY: `[lo, hi)` ranges of distinct chunk indices are disjoint
        // and in bounds; each chunk is produced at most once.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo) }
    }
}

/// Shared-slice parallel views (`rayon::slice::ParallelSlice`).
pub trait ParallelSlice<T> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<SliceProducer<'_, T>>;
    /// Parallel iterator over non-overlapping chunks.
    fn par_chunks(&self, size: usize) -> ParIter<ChunksProducer<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<SliceProducer<'_, T>> {
        ParIter(SliceProducer { s: self })
    }

    fn par_chunks(&self, size: usize) -> ParIter<ChunksProducer<'_, T>> {
        assert!(size != 0, "chunk size must be non-zero");
        ParIter(ChunksProducer { s: self, size })
    }
}

/// Mutable-slice parallel views (`rayon::slice::ParallelSliceMut`).
pub trait ParallelSliceMut<T> {
    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> ParIter<IterMutProducer<'_, T>>;
    /// Parallel iterator over non-overlapping mutable chunks.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<ChunksMutProducer<'_, T>>;
    /// Stable sort by comparator.
    fn par_sort_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, cmp: F);
    /// Unstable sort by comparator.
    fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, cmp: F);
    /// Unstable natural-order sort.
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<IterMutProducer<'_, T>> {
        ParIter(IterMutProducer {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            _marker: PhantomData,
        })
    }

    fn par_chunks_mut(&mut self, size: usize) -> ParIter<ChunksMutProducer<'_, T>> {
        assert!(size != 0, "chunk size must be non-zero");
        ParIter(ChunksMutProducer {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            size,
            _marker: PhantomData,
        })
    }

    fn par_sort_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, cmp: F) {
        self.sort_by(cmp);
    }

    fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, cmp: F) {
        self.sort_unstable_by(cmp);
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }
}

/// The customary glob import.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn range_for_each_and_sum() {
        let hits: Vec<AtomicU32> = (0..10).map(|_| AtomicU32::new(0)).collect();
        (0..10usize).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        let s: usize = (1..=4usize).into_par_iter().map(|i| i * i).sum();
        assert_eq!(s, 30);
    }

    #[test]
    fn fold_reduce_matches_rayon_shape() {
        let total = (0..100usize)
            .into_par_iter()
            .fold(|| 0usize, |acc, i| acc + i)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 4950);
    }

    #[test]
    fn map_reduce_with_identity() {
        let (val, loc) = (0..5usize)
            .into_par_iter()
            .map(|i| ((10 - i) as f64, i))
            .reduce(|| (f64::INFINITY, usize::MAX), |a, b| if b.0 < a.0 { b } else { a });
        assert_eq!((val, loc), (6.0, 4));
    }

    #[test]
    fn slice_adapters() {
        let a = [1.0f64, 2.0, 3.0];
        let s: f64 = a.par_iter().sum();
        assert_eq!(s, 6.0);
        let mut b = [3, 1, 2];
        b.par_sort_unstable();
        assert_eq!(b, [1, 2, 3]);
        let mut c = [0.0f64; 6];
        let off = [10.0, 20.0, 30.0];
        c.par_chunks_mut(2)
            .zip(off.par_iter())
            .enumerate()
            .for_each(|(i, (chunk, &o))| chunk.iter_mut().for_each(|v| *v = o + i as f64));
        assert_eq!(c, [10.0, 10.0, 21.0, 21.0, 32.0, 32.0]);
    }

    #[test]
    fn vec_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_supports_terminal_consumptions() {
        let n: usize = (0..100usize).into_par_iter().filter(|i| i % 3 == 0).count();
        assert_eq!(n, 34);
        let s: usize = (0..100usize).into_par_iter().filter(|i| i % 2 == 0).sum();
        assert_eq!(s, 2450);
        let kept: Vec<usize> = (0..10usize).into_par_iter().filter(|i| *i >= 7).collect();
        assert_eq!(kept, vec![7, 8, 9]);
    }

    #[test]
    fn min_max_over_mapped_items() {
        let xs = [(3, 'a'), (1, 'b'), (1, 'c'), (3, 'd')];
        let min = xs.par_iter().map(|&(k, t)| (k, t)).min();
        let max = xs.par_iter().map(|&(k, t)| (k, t)).max();
        assert_eq!(min, Some((1, 'b')));
        assert_eq!(max, Some((3, 'd')));
    }

    #[test]
    fn empty_inputs() {
        let s: usize = (0..0usize).into_par_iter().sum();
        assert_eq!(s, 0);
        let total = (0..0usize)
            .into_par_iter()
            .fold(|| 7usize, |a, i| a + i)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 7, "empty fold still yields one init() partial");
        assert_eq!((0..0usize).into_par_iter().count(), 0);
        let empty: [u8; 0] = [];
        assert_eq!(empty.par_iter().min(), None);
    }
}
