//! Behavior under a real multi-thread pool.
//!
//! The pool is process-global and sized once at first use, so every test in
//! this binary pins `RAYON_NUM_THREADS=4` before touching it; whichever test
//! runs first sizes the pool and all of them agree.

use rayon::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use simsched::sync::Mutex;
use std::time::Duration;

fn force_threads() {
    std::env::set_var("RAYON_NUM_THREADS", "4");
}

#[test]
fn pool_reports_configured_width() {
    force_threads();
    assert_eq!(rayon::current_num_threads(), 4);
}

#[test]
fn par_iter_work_runs_on_multiple_os_threads() {
    force_threads();
    let ids = Mutex::new(HashSet::new());
    (0..256usize).into_par_iter().for_each(|_| {
        ids.lock().unwrap().insert(std::thread::current().id());
        // Give the items measurable duration so idle workers have time to
        // steal before the caller drains everything (this host may have a
        // single core, so workers only run while the caller sleeps).
        std::thread::sleep(Duration::from_micros(200));
    });
    let distinct = ids.lock().unwrap().len();
    assert!(
        distinct >= 2,
        "expected work on >=2 OS threads under RAYON_NUM_THREADS=4, saw {distinct}"
    );
}

#[test]
fn reductions_are_deterministic_for_fixed_width() {
    force_threads();
    let x: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
    let runs: Vec<f64> = (0..5).map(|_| x.par_iter().sum::<f64>()).collect();
    assert!(
        runs.windows(2).all(|w| w[0].to_bits() == w[1].to_bits()),
        "sum must be bitwise-reproducible for a fixed pool width: {runs:?}"
    );
    let seq: f64 = x.iter().sum();
    assert!((runs[0] - seq).abs() <= 1e-9 * seq.abs().max(1.0));
}

#[test]
fn fold_reduce_and_mutation_are_correct_under_threads() {
    force_threads();
    let total = (0..100_000usize)
        .into_par_iter()
        .fold(|| 0u64, |acc, i| acc + i as u64)
        .reduce(|| 0, |a, b| a + b);
    assert_eq!(total, 100_000u64 * 99_999 / 2);
    let mut v = vec![0u32; 100_000];
    v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i as u32);
    assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32));
    let collected: Vec<usize> = (0..10_000usize).into_par_iter().map(|i| i * 3).collect();
    assert_eq!(collected, (0..10_000).map(|i| i * 3).collect::<Vec<_>>());
}

#[test]
fn atomic_updates_survive_contention() {
    force_threads();
    let acc = AtomicU64::new(0);
    (0..50_000usize).into_par_iter().for_each(|_| {
        acc.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(acc.load(Ordering::Relaxed), 50_000);
}

#[test]
fn panics_propagate_to_the_caller() {
    force_threads();
    let caught = std::panic::catch_unwind(|| {
        (0..1_000usize).into_par_iter().for_each(|i| {
            if i == 137 {
                panic!("boom");
            }
        });
    });
    assert!(caught.is_err(), "a panic in a parallel body must propagate");
    // The pool must remain usable after a poisoned job.
    let s: usize = (0..100usize).into_par_iter().sum();
    assert_eq!(s, 4950);
}

#[test]
fn nested_parallel_calls_run_inline() {
    force_threads();
    let acc = AtomicU64::new(0);
    (0..64usize).into_par_iter().for_each(|_| {
        // A parallel call from inside a parallel body must not deadlock.
        let inner: u64 = (0..100usize).into_par_iter().map(|i| i as u64).sum();
        acc.fetch_add(inner, Ordering::Relaxed);
    });
    assert_eq!(acc.load(Ordering::Relaxed), 64 * 4950);
}
