//! Single-thread determinism: with `RAYON_NUM_THREADS=1` the pool must
//! never spawn a thread and every consumption must be bitwise-identical to
//! the old sequential engine (plain in-order iteration on the caller).
//!
//! Separate test binary from `threaded.rs` because the pool width is fixed
//! at first use per process.

use rayon::prelude::*;

fn force_one_thread() {
    std::env::set_var("RAYON_NUM_THREADS", "1");
}

#[test]
fn one_thread_runs_in_order_on_the_caller() {
    force_one_thread();
    assert_eq!(rayon::current_num_threads(), 1);
    let me = std::thread::current().id();
    let order = simsched::sync::Mutex::new(Vec::new());
    (0..1_000usize).into_par_iter().for_each(|i| {
        assert_eq!(std::thread::current().id(), me, "must stay on the caller");
        order.lock().unwrap().push(i);
    });
    assert_eq!(*order.lock().unwrap(), (0..1_000).collect::<Vec<_>>());
}

#[test]
fn one_thread_results_are_bitwise_sequential() {
    force_one_thread();
    // Values with enough structure that any re-association of the f64
    // additions would change low-order bits.
    let x: Vec<f64> = (0..4096)
        .map(|i: usize| ((i.wrapping_mul(2654435761) % 1000) as f64) * 1e-3 + (i as f64).sqrt())
        .collect();

    let par_sum: f64 = x.par_iter().sum();
    let seq_sum: f64 = x.iter().sum();
    assert_eq!(par_sum.to_bits(), seq_sum.to_bits());

    let par_fold = x
        .par_iter()
        .fold(|| 0.0f64, |acc, &v| acc + v * v)
        .reduce(|| 0.0, |a, b| a + b);
    let seq_fold = x.iter().fold(0.0f64, |acc, &v| acc + v * v);
    assert_eq!(par_fold.to_bits(), seq_fold.to_bits());

    let par_red = x
        .par_iter()
        .map(|&v| v)
        .reduce(|| f64::INFINITY, f64::min);
    let seq_red = x.iter().copied().fold(f64::INFINITY, f64::min);
    assert_eq!(par_red.to_bits(), seq_red.to_bits());

    let par_minloc = x
        .par_iter()
        .enumerate()
        .map(|(i, &v)| (v, i))
        .reduce(|| (f64::INFINITY, usize::MAX), |a, b| if b.0 < a.0 { b } else { a });
    let seq_minloc = x
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i))
        .fold((f64::INFINITY, usize::MAX), |a, b| if b.0 < a.0 { b } else { a });
    assert_eq!(par_minloc.0.to_bits(), seq_minloc.0.to_bits());
    assert_eq!(par_minloc.1, seq_minloc.1);
}
