//! Vendored stand-in for the `criterion` crate.
//!
//! This build environment has no crates.io access, so the workspace vendors
//! the benchmarking surface its `harness = false` benches use. Measurement
//! is deliberately simple: warm up for the configured duration, then time
//! `sample_size` batches and report the per-iteration mean and min to
//! stdout. No statistics, plots, or baselines.

// Third-party stand-in: exempt from the workspace simsched-shim lint policy
// (clippy.toml); benchmark timing must read the real wall clock.
#![allow(clippy::disallowed_methods)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque black box: defeat constant folding of benchmark inputs/outputs.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark (reported as GB/s or Melem/s).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Identify a benchmark as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: name.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.name, self.parameter)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    /// Mean and min per-iteration time from the last `iter` call.
    last: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Time `routine`, recording per-iteration statistics.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.last = Some((total / self.iters.max(1) as u32, min));
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    warm_up: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// How long to run the routine before timing it.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Target measurement time (accepted for API compatibility; the
    /// stand-in always times exactly `sample_size` iterations).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        self.run(&label, |b| f(b, input));
        self
    }

    /// Run a benchmark identified by name alone.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        self.run(&label, &mut f);
        self
    }

    fn run(&mut self, label: &str, mut f: impl FnMut(&mut Bencher)) {
        // `--test` mode: run each routine once to prove it works, skip the
        // warm-up and the measurement loop (mirrors real criterion's
        // `cargo bench -- --test`).
        let (warm_up, iters) = if self.criterion.test_mode {
            (Duration::ZERO, 1)
        } else {
            (self.warm_up, self.sample_size)
        };
        // Warm-up: run single iterations until the warm-up budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < warm_up {
            let mut b = Bencher {
                iters: 1,
                last: None,
            };
            f(&mut b);
        }
        let mut b = Bencher { iters, last: None };
        f(&mut b);
        if let Some((mean, min)) = b.last {
            let extra = match self.throughput {
                Some(Throughput::Bytes(bytes)) => format!(
                    "  {:>8.3} GB/s",
                    bytes as f64 / mean.as_secs_f64() / 1e9
                ),
                Some(Throughput::Elements(n)) => format!(
                    "  {:>8.3} Melem/s",
                    n as f64 / mean.as_secs_f64() / 1e6
                ),
                None => String::new(),
            };
            println!(
                "{label:<50} mean {:>12.3?}  min {:>12.3?}{extra}",
                mean, min
            );
            self.criterion.record_json(label, mean, min);
        }
        self.criterion.benchmarks_run += 1;
    }

    /// End the group (prints a trailing blank line, as a visual separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The benchmark driver.
pub struct Criterion {
    benchmarks_run: usize,
    /// `--test` on the bench binary's command line: run every routine once,
    /// skipping warm-up and measurement (a smoke mode for CI).
    test_mode: bool,
    /// When the `CRITERION_JSON` environment variable names a file, one JSON
    /// object per benchmark (`{"label", "mean_ns", "min_ns"}`) is appended
    /// to it, newline-delimited, for scripts to snapshot.
    json_path: Option<std::path::PathBuf>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            benchmarks_run: 0,
            test_mode: std::env::args().any(|a| a == "--test"),
            json_path: std::env::var_os("CRITERION_JSON").map(Into::into),
        }
    }
}

impl Criterion {
    fn record_json(&mut self, label: &str, mean: Duration, min: Duration) {
        let Some(path) = &self.json_path else {
            return;
        };
        use std::io::Write;
        let line = format!(
            "{{\"label\":\"{}\",\"mean_ns\":{},\"min_ns\":{}}}\n",
            label.escape_default(),
            mean.as_nanos(),
            min.as_nanos(),
        );
        let written = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| f.write_all(line.as_bytes()));
        if let Err(e) = written {
            eprintln!("criterion: cannot append to {}: {e}", path.display());
        }
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
            warm_up: Duration::from_millis(100),
            throughput: None,
        }
    }

    /// Total benchmarks executed so far.
    pub fn benchmarks_run(&self) -> usize {
        self.benchmarks_run
    }
}

/// Collect benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Emit `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            eprintln!("ran {} benchmarks", c.benchmarks_run());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loop_measures_and_counts() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("unit");
            g.sample_size(3).warm_up_time(Duration::from_millis(1));
            g.throughput(Throughput::Bytes(8));
            g.bench_with_input(BenchmarkId::new("sum", "seq"), &100u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
            g.finish();
        }
        assert_eq!(c.benchmarks_run(), 2);
    }
}
