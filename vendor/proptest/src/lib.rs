//! Vendored stand-in for the `proptest` crate.
//!
//! This build environment has no crates.io access, so the workspace vendors
//! the proptest surface its property tests use: the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros, range and `collection::vec`
//! strategies, and `ProptestConfig::with_cases`. Sampling is random but
//! deterministic — the RNG is seeded from the test's module path and case
//! index — so failures reproduce across runs. Shrinking is not implemented;
//! a failure reports the case number and assertion message instead of a
//! minimized input.

/// Input strategies: how to sample a value of some shape.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A sampleable input domain (radically reduced from proptest's
    /// `Strategy`: sampling only, no value tree / shrinking).
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform sampled values with `f` (proptest's `prop_map`).
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (S0 0)
        (S0 0, S1 1)
        (S0 0, S1 1, S2 2)
        (S0 0, S1 1, S2 2, S3 3)
    }

    /// A fixed value (proptest's `Just`).
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.next_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

    /// Strategy for vectors with sampled length (see [`crate::collection::vec`]).
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start < self.size.end {
                self.size.start + (rng.next_u64() as usize) % (self.size.end - self.size.start)
            } else {
                self.size.start
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy producing `None` roughly a quarter of the time and a
    /// sampled `Some` otherwise (see [`of`]).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }

    /// An `Option` over values from `inner`, biased toward `Some`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Test-execution plumbing used by the generated test bodies.
pub mod test_runner {
    /// Per-run configuration; only the case count is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of sampled cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run each property this many times.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// A property-level failure (what `prop_assert!` returns).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Build a failure with a message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic test RNG (splitmix64 core), seeded from the test name
    /// so every run samples the same inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test's fully qualified name.
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf29ce484222325; // FNV-1a offset basis
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h | 1 }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// The customary glob import; also provides the `prop::` path prefix.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written in the source, proptest
/// style) that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__e) = __outcome {
                        panic!(
                            "property `{}` failed at case #{}: {}",
                            stringify!($name),
                            __case,
                            __e
                        );
                    }
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Assert a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Vectors respect the requested length bounds.
        #[test]
        fn vec_strategy_length(data in prop::collection::vec(-1.0f64..1.0, 2..9)) {
            prop_assert!((2..9).contains(&data.len()));
            for v in &data {
                prop_assert!((-1.0..1.0).contains(v));
            }
        }

        /// Integer ranges stay in bounds.
        #[test]
        fn int_range_in_bounds(x in 3usize..17, y in -5i32..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert_eq!(x, x, "identity {}", x);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("some::test");
        let mut b = TestRng::for_test("some::test");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("other::test");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
