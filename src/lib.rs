//! # RAJAPerf-rs
//!
//! A Rust reproduction of the **RAJA Performance Suite** and the
//! Caliper/Thicket performance-portability analysis toolchain described in
//! *"RAJA Performance Suite: Performance Portability Analysis with Caliper
//! and Thicket"* (Pearce et al., SC 2024).
//!
//! The workspace re-exported here contains:
//!
//! * [`kernels`] — all 76 Table I kernels in seven groups, each with Base
//!   and RAJA variants over sequential, host-parallel, and simulated-device
//!   back-ends, plus exact analytic metrics and model signatures.
//! * [`raja`] — the performance-portability layer (`forall`, policies,
//!   reducers, scans, sorts, atomics, views).
//! * [`gpusim`] — the simulated GPU device (grid/block/thread hierarchy,
//!   shared memory, barriers).
//! * [`caliper`] / [`adiak`] — region-based instrumentation and run
//!   metadata, writing `.cali`-style JSON profiles.
//! * [`thicket`] — exploratory data analysis over many profiles
//!   (dataframe / metadata / statsframe).
//! * [`hierclust`] — agglomerative (Ward) clustering for the kernel
//!   similarity analysis.
//! * [`simcomm`] — the message-passing substrate behind the Comm kernels.
//! * [`perfmodel`] — analytic models of the paper's four machines: TMA
//!   breakdowns, instruction rooflines, and execution-time prediction.
//! * [`suite`] — the driver: run parameters, executor, reports, and the
//!   simulation pipeline behind every figure.
//!
//! # Quickstart
//!
//! ```
//! use rajaperf::prelude::*;
//!
//! // Run one kernel in two variants and compare.
//! let kernel = kernels::find("Stream_TRIAD").unwrap();
//! let tuning = Tuning::default();
//! let base = kernel.execute(VariantId::BaseSeq, 100_000, 3, &tuning);
//! let raja = kernel.execute(VariantId::RajaSeq, 100_000, 3, &tuning);
//! assert!(kernels::common::close(base.checksum, raja.checksum, 1e-10));
//!
//! // Predict its speedup moving from the DDR node to the MI250X node.
//! let sig = kernel.signature(32_000_000);
//! let ddr = Machine::get(MachineId::SprDdr);
//! let mi = Machine::get(MachineId::EpycMi250x);
//! assert!(perfmodel::speedup(&ddr, &mi, &sig) > 10.0);
//! ```

pub use adiak;
pub use caliper;
pub use gpusim;
pub use hierclust;
pub use kernels;
pub use perfmodel;
pub use raja;
pub use simcomm;
pub use suite;
pub use thicket;

/// The most common imports for suite users.
pub mod prelude {
    pub use crate::{adiak, caliper, gpusim, hierclust, kernels, perfmodel, raja, simcomm,
                    suite, thicket};
    pub use kernels::{
        AnalyticMetrics, Feature, Group, KernelBase, KernelInfo, RunResult, Tuning, VariantId,
    };
    pub use perfmodel::{Machine, MachineId, MachineKind};
    pub use suite::{RunParams, Selection};
}
