//! Machine comparison: the paper's §IV/§V analysis end-to-end — simulate
//! the suite on the four Table II machines, cluster the kernels by their
//! SPR-DDR top-down tuples, and relate each cluster's bottleneck to its
//! cross-architecture speedups.
//!
//! ```text
//! cargo run --release --example machine_comparison
//! ```

use rajaperf::prelude::*;
use suite::simulate::ClusterAnalysis;

fn main() {
    let ca = ClusterAnalysis::run(4);
    println!(
        "clustered {} comparison kernels into {} clusters (Ward cut at {:.3})\n",
        ca.sims.len(),
        ca.num_clusters(),
        ca.threshold
    );

    let means = ca.cluster_tma_means();
    let hbm = ca.cluster_speedup_means(MachineId::SprHbm);
    let v100 = ca.cluster_speedup_means(MachineId::P9V100);
    let mi = ca.cluster_speedup_means(MachineId::EpycMi250x);
    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "cluster", "FE", "BadSpec", "Retire", "Core", "Memory", "HBM", "V100", "MI250X"
    );
    for i in 0..ca.num_clusters() {
        println!(
            "{:<8} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} | {:>8.2} {:>8.2} {:>8.2}",
            i, means[i][0], means[i][1], means[i][2], means[i][3], means[i][4],
            hbm[i], v100[i], mi[i]
        );
    }

    let mem = ca.most_memory_bound_cluster();
    println!(
        "\nThe most memory-bound cluster ({mem}) gains the most from higher-bandwidth \
         machines —\nthe paper's headline conclusion."
    );

    // Per-kernel drill-down for one kernel of each flavor.
    println!("\nPer-kernel detail:");
    for name in ["Stream_TRIAD", "Polybench_GEMM", "Basic_PI_ATOMIC", "Apps_EDGE3D"] {
        let kernel = kernels::find(name).unwrap();
        let sim = suite::simulate::simulate_kernel(kernel);
        print!("  {:<20}", name);
        for id in MachineId::all() {
            print!(" {}={:.2}x", id.shorthand(), sim.speedup[&id]);
        }
        println!();
    }
}
