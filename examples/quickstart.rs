//! Quickstart: run a handful of kernels in several variants, validate the
//! checksums, and print a timing table.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rajaperf::prelude::*;

fn main() {
    let names = ["Stream_TRIAD", "Basic_DAXPY", "Algorithm_SCAN", "Lcals_HYDRO_1D"];
    let variants = [
        VariantId::BaseSeq,
        VariantId::RajaSeq,
        VariantId::BasePar,
        VariantId::RajaPar,
        VariantId::RajaSimGpu,
    ];
    let tuning = Tuning::default();
    let (n, reps) = (200_000, 5);

    println!(
        "{:<20} {:<12} {:>12} {:>14} {:>10}",
        "Kernel", "Variant", "Time/rep (s)", "GB/s", "Checksum ok"
    );
    for name in names {
        let kernel = kernels::find(name).expect("kernel exists");
        // Same rep count as the measured runs: kernels like DAXPY
        // accumulate across repetitions.
        let reference = kernel.execute(VariantId::BaseSeq, n, reps, &tuning).checksum;
        for v in variants {
            let r = kernel.execute(v, n, reps, &tuning);
            let gbs = (r.metrics.bytes_read + r.metrics.bytes_written) / r.time_per_rep() / 1e9;
            let ok = kernels::common::close(r.checksum, reference, 1e-8);
            println!(
                "{:<20} {:<12} {:>12.3e} {:>14.2} {:>10}",
                name,
                v.name(),
                r.time_per_rep(),
                gbs,
                if ok { "yes" } else { "NO" }
            );
            assert!(ok, "variant {v:?} diverged from the reference");
        }
    }
    println!("\nAll variants agree with the Base_Seq reference.");
}
