//! Tuning sweep: the §II-C "find optimal configurations for specific
//! hardware by tuning various execution parameters, such as GPU
//! thread-block sizes" workflow — run a kernel across RAJAPerf's block-size
//! tunings on the simulated device and relate the measured times to the
//! occupancy each configuration would reach on V100-class hardware.
//!
//! ```text
//! cargo run --release --example tuning_sweep
//! ```

use gpusim::occupancy::{occupancy, SmLimits};
use rajaperf::prelude::*;

fn main() {
    let block_sizes = [32usize, 64, 128, 256, 512, 1024];
    let limits = SmLimits::v100();
    let (n, reps) = (200_000, 5);

    for name in ["Stream_TRIAD", "Basic_REDUCE3_INT", "Basic_MAT_MAT_SHARED"] {
        println!("{name} (n = {n}, RAJA_SimGpu):");
        println!(
            "  {:>10} {:>14} {:>12} {:>14}",
            "block", "time/rep (s)", "occupancy", "limited by"
        );
        let sweep = suite::run_tuning_sweep(name, VariantId::RajaSimGpu, n, reps, &block_sizes)
            .expect("registry kernel names are known");
        // MAT_MAT_SHARED's device kernel stages three 16x16 f64 tiles.
        let shared_bytes = if name == "Basic_MAT_MAT_SHARED" {
            3 * 16 * 16 * 8
        } else {
            0
        };
        for (bs, t) in sweep {
            let occ = occupancy(&limits, bs, shared_bytes);
            println!(
                "  {:>10} {:>14.3e} {:>11.0}% {:>14}",
                format!("block_{bs}"),
                t,
                occ.fraction * 100.0,
                match occ.limited_by {
                    gpusim::occupancy::OccupancyLimit::Threads => "threads",
                    gpusim::occupancy::OccupancyLimit::Blocks => "block slots",
                    gpusim::occupancy::OccupancyLimit::SharedMemory => "shared mem",
                    gpusim::occupancy::OccupancyLimit::NotLaunchable => "UNLAUNCHABLE",
                }
            );
        }
        println!();
    }
    println!(
        "Reading: results are identical across tunings (the suite validates this);\n\
         on real hardware the occupancy column is what moves the time column —\n\
         block_32's half occupancy is the classic tuning pitfall."
    );
}
