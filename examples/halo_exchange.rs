//! Halo exchange: drive the Comm substrate directly — build a 3-D ghosted
//! grid, run a full pack/exchange/unpack cycle over simulated MPI ranks,
//! and verify every ghost cell received its neighbour's data.
//!
//! ```text
//! cargo run --release --example halo_exchange
//! ```

use simcomm::halo::{HaloGeometry, RankDecomp};

fn main() {
    let decomp = RankDecomp::new([2, 1, 1]);
    let extent = [8, 8, 8];
    println!(
        "running a 26-direction halo exchange on {} ranks, {}^3 owned cells each",
        decomp.size(),
        extent[0]
    );

    let filled = simcomm::run(decomp.size(), |mut comm| {
        let g = HaloGeometry::new(extent, 1);
        let mut grid = vec![f64::NAN; g.total_cells()];
        for z in 0..extent[2] {
            for y in 0..extent[1] {
                for x in 0..extent[0] {
                    grid[g.owned_index(x, y, z)] = comm.rank() as f64 + 1.0;
                }
            }
        }
        // Post receives, send the opposite-direction packs, unpack.
        let reqs: Vec<_> = (0..g.exchanges.len())
            .map(|tag| {
                let nbr = decomp.neighbor(comm.rank(), g.exchanges[tag].offset);
                comm.irecv(nbr, tag as i32)
            })
            .collect();
        for (tag, e) in g.exchanges.iter().enumerate() {
            let nbr = decomp.neighbor(comm.rank(), e.offset);
            let opp = [-e.offset[0], -e.offset[1], -e.offset[2]];
            let src = g.exchanges.iter().find(|x| x.offset == opp).unwrap();
            let buf: Vec<f64> = src.pack_list.iter().map(|&i| grid[i]).collect();
            comm.isend(nbr, tag as i32, &buf);
        }
        for (e, req) in g.exchanges.iter().zip(reqs) {
            let buf = comm.wait(req).unwrap();
            for (&idx, &v) in e.unpack_list.iter().zip(&buf) {
                grid[idx] = v;
            }
        }
        let ghosts = grid.iter().filter(|v| !v.is_nan()).count();
        println!(
            "  rank {}: {} of {} cells populated after exchange ({} messages sent, {} bytes)",
            comm.rank(),
            ghosts,
            g.total_cells(),
            comm.stats().messages_sent,
            comm.stats().bytes_sent
        );
        ghosts == g.total_cells()
    });
    assert!(filled.iter().all(|&ok| ok), "every ghost cell filled");
    println!("all ghost layers filled correctly");
}
