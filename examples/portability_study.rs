//! Performance-portability study: the paper's §II-C/§II-D workflow —
//! run the Stream group under every variant, write one Caliper profile per
//! run, compose them with Thicket, and report the RAJA abstraction
//! overhead per back-end.
//!
//! ```text
//! cargo run --release --example portability_study
//! ```

use rajaperf::prelude::*;

fn main() {
    let dir = std::env::temp_dir().join("rajaperf_portability_study");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // One run (and one profile) per variant, exactly as upstream.
    let base = RunParams {
        selection: Selection::Groups(vec!["Stream".into()]),
        explicit_size: Some(200_000),
        explicit_reps: Some(10),
        caliper_spec: Some(format!("spot(output={}/run.cali.json)", dir.display())),
        ..RunParams::default()
    };
    let variants = [
        VariantId::BaseSeq,
        VariantId::RajaSeq,
        VariantId::BasePar,
        VariantId::RajaPar,
        VariantId::BaseSimGpu,
        VariantId::RajaSimGpu,
    ];
    let reports = suite::run_variants(&base, &variants);
    let checksums = suite::checksum_report(&reports);
    assert!(checksums.all_pass(), "{}", checksums.render());

    // Compose the profiles with Thicket and group by variant metadata.
    let profiles: Vec<thicket::ProfileData> = reports
        .iter()
        .flat_map(|r| r.outputs.iter())
        .map(|p| thicket::ProfileData::read_file(p).expect("profile readable"))
        .collect();
    let tk = thicket::Thicket::from_profiles(&profiles);
    println!("composed {} profiles into one thicket\n", tk.profiles.len());

    // RAJA abstraction overhead: RAJA time / Base time per back-end.
    println!(
        "{:<16} {:>16} {:>16} {:>10}",
        "Kernel", "backend", "RAJA/Base time", "overhead"
    );
    for kernel in ["Stream_ADD", "Stream_COPY", "Stream_DOT", "Stream_MUL", "Stream_TRIAD"] {
        for (b, r) in [
            (VariantId::BaseSeq, VariantId::RajaSeq),
            (VariantId::BasePar, VariantId::RajaPar),
            (VariantId::BaseSimGpu, VariantId::RajaSimGpu),
        ] {
            let tb = reports
                .iter()
                .find(|rep| rep.variant == b)
                .and_then(|rep| rep.entry(kernel))
                .map(|e| e.result.time_per_rep())
                .unwrap();
            let tr = reports
                .iter()
                .find(|rep| rep.variant == r)
                .and_then(|rep| rep.entry(kernel))
                .map(|e| e.result.time_per_rep())
                .unwrap();
            let ratio = tr / tb;
            println!(
                "{:<16} {:>16} {:>16.3} {:>9.1}%",
                kernel,
                r.name(),
                ratio,
                (ratio - 1.0) * 100.0
            );
        }
    }
    println!("\n(ratios near 1.0 mean the portability layer adds negligible cost)");
    let _ = std::fs::remove_dir_all(&dir);
}
